"""Gradient boosted regression trees (the paper's "GB" model).

The paper finds GB the best overall model on both Aurora and Frontier and
deploys it with 750 estimators and max depth 10.  This implementation is
least-squares gradient boosting with shrinkage, optional stochastic
subsampling and optional early stopping on a validation fraction.

When ``subsample == 1.0`` every stage fits on the training matrix itself,
so the sorted-feature-index cache (:func:`repro.parallel.cache.feature_presort`)
is hit once per stage and the per-stage column sorts disappear; stages are
sequential by construction, so boosting itself takes no ``n_jobs``.

Prediction runs on the packed flat-array engine (:mod:`repro.ml.packed`):
one batched traversal produces the ``(n_samples, n_stages)`` leaf-value
matrix, which is then accumulated in stage order with the historical
``init + lr * stage_0 + lr * stage_1 + ...`` float-op sequence, so packed
predictions are byte-identical to the per-tree object path.  The arena is
also the pickle form of a fitted model (see ``__getstate__``).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    RegressorMixin,
    check_array,
    check_random_state,
    check_X_y,
)
from repro.ml.packed import PackedTreesMixin
from repro.ml.tree import DecisionTreeRegressor
from repro.parallel.cache import FeatureBins, feature_bins

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(PackedTreesMixin, BaseEstimator, RegressorMixin):
    """Sequential ensemble where each tree fits the residuals of the current model.

    Parameters
    ----------
    loss:
        ``"squared_error"`` (negative gradient = residual) or ``"absolute_error"``
        (negative gradient = sign of residual, leaves re-valued with the median).
    n_estimators, learning_rate, max_depth, min_samples_split, min_samples_leaf,
    max_features, subsample:
        Standard boosting controls.
    n_iter_no_change, validation_fraction, tol:
        When ``n_iter_no_change`` is set, a validation split is carved out and
        boosting stops once the validation loss has not improved by ``tol``
        for that many consecutive iterations.
    tree_method, max_bins:
        Split-search engine for the stage trees — ``"exact"`` (default) or
        ``"hist"`` (see :mod:`repro.ml.tree`).  With ``"hist"`` the training
        matrix is quantised once per fit and every boosting stage reuses the
        same binning (subsampled stages take the row subset of the codes).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Any = None,
        subsample: float = 1.0,
        loss: str = "squared_error",
        n_iter_no_change: Optional[int] = None,
        validation_fraction: float = 0.1,
        tol: float = 1e-4,
        random_state: Any = None,
        tree_method: str = "exact",
        max_bins: int = 255,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.subsample = subsample
        self.loss = loss
        self.n_iter_no_change = n_iter_no_change
        self.validation_fraction = validation_fraction
        self.tol = tol
        self.random_state = random_state
        self.tree_method = tree_method
        self.max_bins = max_bins

    def _negative_gradient(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        if self.loss == "squared_error":
            return y - pred
        if self.loss == "absolute_error":
            return np.sign(y - pred)
        raise ValueError(f"Unknown loss {self.loss!r}.")

    def _loss_value(self, y: np.ndarray, pred: np.ndarray) -> float:
        if self.loss == "squared_error":
            return float(np.mean((y - pred) ** 2))
        return float(np.mean(np.abs(y - pred)))

    def _update_leaves_absolute(self, tree: DecisionTreeRegressor, X: np.ndarray,
                                residual: np.ndarray) -> None:
        """For absolute-error loss, re-value each leaf with the median residual.

        One argsort-and-segment pass: residuals are lexsorted within leaf
        groups, so each leaf's median is its middle order statistic (or the
        mean of the two middle ones — the exact ``np.median`` computation, so
        re-valued leaves are bit-identical to the per-leaf masked loop).
        """
        leaves = tree.apply(X)
        order = np.lexsort((residual, leaves))
        sorted_leaves = leaves[order]
        sorted_residual = residual[order]
        starts = np.flatnonzero(np.r_[True, sorted_leaves[1:] != sorted_leaves[:-1]])
        counts = np.diff(np.r_[starts, sorted_leaves.size])
        mid = starts + counts // 2
        upper = sorted_residual[mid]
        lower = sorted_residual[mid - 1]
        medians = np.where(counts % 2 == 1, upper, (lower + upper) / 2.0)
        tree.value_[sorted_leaves[starts]] = medians

    def fit(self, X: Any, y: Any) -> "GradientBoostingRegressor":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1.")
        if not 0.0 < self.learning_rate:
            raise ValueError("learning_rate must be positive.")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1].")
        if self.tree_method not in ("exact", "hist"):
            raise ValueError(
                f"Unknown tree_method {self.tree_method!r}; expected 'exact' or 'hist'."
            )
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)

        X_val: Optional[np.ndarray] = None
        y_val: Optional[np.ndarray] = None
        if self.n_iter_no_change is not None:
            n_val = max(1, int(round(self.validation_fraction * len(y))))
            if n_val >= len(y):
                raise ValueError("validation_fraction leaves no training data.")
            perm = rng.permutation(len(y))
            val_idx, train_idx = perm[:n_val], perm[n_val:]
            X_val, y_val = X[val_idx], y[val_idx]
            X, y = X[train_idx], y[train_idx]

        n_samples = X.shape[0]
        # With the hist method the (post-carve) training matrix is quantised
        # exactly once; every stage — and, via the content-addressed cache,
        # every repeated fit on the same matrix — reuses the binning.
        bins: Optional[FeatureBins] = (
            feature_bins(X, self.max_bins) if self.tree_method == "hist" else None
        )
        self.init_ = float(np.mean(y)) if self.loss == "squared_error" else float(np.median(y))
        pred = np.full(n_samples, self.init_)
        val_pred = np.full(len(y_val), self.init_) if y_val is not None else None

        self.estimators_: list[DecisionTreeRegressor] = []
        self._packed = None  # drop any arena from a previous fit
        self.train_score_: list[float] = []
        self.validation_score_: list[float] = []
        best_val = np.inf
        stall = 0

        for _ in range(self.n_estimators):
            residual = self._negative_gradient(y, pred)
            if self.subsample < 1.0:
                n_draw = max(2, int(round(self.subsample * n_samples)))
                idx = rng.choice(n_samples, size=n_draw, replace=False)
                X_stage, residual_stage = X[idx], residual[idx]
            else:
                # Reuse the training matrix itself: every stage then hits the
                # same sorted-feature-index cache entry (see repro.parallel).
                idx = None
                X_stage, residual_stage = X, residual
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
                tree_method=self.tree_method,
                max_bins=self.max_bins,
            )
            # Subsampled stages fit a fresh one-use matrix: bypass the presort
            # cache (no possible hit) so it keeps the reusable full matrices.
            # The hist binning survives subsampling — stages hand the tree the
            # row subset of the once-computed codes instead of re-binning.
            # Full-sample squared-error hist stages also capture the tree's
            # training predictions during the build (bit-identical to
            # ``tree.predict(X)``) so the stage update needs no traversal;
            # absolute-error leaves are re-valued after the fit, so the
            # captured values would be stale there.
            capture = (
                idx is None
                and self.tree_method == "hist"
                and self.loss == "squared_error"
            )
            tree.fit(
                X_stage,
                residual_stage,
                use_presort_cache=idx is None,
                bins=bins if idx is None else (None if bins is None else bins.take(idx)),
                capture_train_prediction=capture,
            )
            if self.loss == "absolute_error":
                residual_abs = (y - pred) if idx is None else (y - pred)[idx]
                self._update_leaves_absolute(tree, X_stage, residual_abs)
            if capture:
                pred += self.learning_rate * tree.train_prediction_
                del tree.train_prediction_  # keep the pickled tree lean
            else:
                pred += self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)
            self.train_score_.append(self._loss_value(y, pred))

            if y_val is not None:
                val_pred += self.learning_rate * tree.predict(X_val)
                val_loss = self._loss_value(y_val, val_pred)
                self.validation_score_.append(val_loss)
                if val_loss < best_val - self.tol:
                    best_val = val_loss
                    stall = 0
                else:
                    stall += 1
                    if stall >= self.n_iter_no_change:
                        break

        self.n_estimators_ = len(self.estimators_)
        self.n_features_in_ = X.shape[1]
        return self

    def _raw_predict(self, X: np.ndarray, n_estimators: Optional[int] = None) -> np.ndarray:
        n_stages = len(self.estimators_) if n_estimators is None else min(
            int(n_estimators), len(self.estimators_)
        )
        if n_stages < 1:
            return np.full(X.shape[0], self.init_)
        # One batched traversal for every stage; leaf values accumulate in
        # stage order, reproducing the sequential shrinkage float-op sequence
        # of the per-tree loop bit for bit.
        return self._packed_ensemble().accumulate(
            X, init=self.init_, scale=self.learning_rate, n_trees=n_stages
        )

    def predict(self, X: Any) -> np.ndarray:
        self._check_is_fitted()
        X = check_array(X)
        return self._raw_predict(X)

    def staged_predict(self, X: Any):
        """Yield predictions after each boosting stage (for learning curves)."""
        self._check_is_fitted()
        X = check_array(X)
        leaves = self._packed_ensemble().leaf_values(X, tree_major=True)
        preds = np.full(X.shape[0], self.init_)
        for stage in range(leaves.shape[0]):
            preds = preds + self.learning_rate * leaves[stage]
            yield preds.copy()

    @property
    def feature_importances_(self) -> np.ndarray:
        self._check_is_fitted()
        importances = np.mean([t.feature_importances_ for t in self.estimators_], axis=0)
        total = importances.sum()
        return importances / total if total > 0 else importances
