"""From-scratch NumPy machine-learning stack used by the resource-estimation
framework.

The paper evaluates nine classical regressors (Polynomial Regression, Kernel
Ridge, Decision Trees, Random Forests, Gradient Boosting, AdaBoost, Gaussian
Processes, Bayesian Ridge and Support Vector Regression) tuned with three
hyper-parameter search strategies (grid, randomized, Bayesian).  This
sub-package provides all of them with a scikit-learn-compatible
``fit``/``predict``/``get_params``/``set_params`` protocol so the rest of the
framework (cross-validation, searches, committees, active learning) can treat
them uniformly.
"""

from repro.ml.base import BaseEstimator, RegressorMixin, clone
from repro.ml.metrics import (
    explained_variance_score,
    max_error,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    median_absolute_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.preprocessing import MinMaxScaler, PolynomialFeatures, StandardScaler
from repro.ml.model_selection import (
    KFold,
    cross_val_predict,
    cross_val_score,
    cross_validate,
    train_test_split,
)
from repro.ml.linear import (
    BayesianRidge,
    LinearRegression,
    PolynomialRegression,
    Ridge,
)
from repro.ml.kernel_ridge import KernelRidge
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.packed import PackedEnsemble, committee_predictions
from repro.ml.forest import RandomForestRegressor
from repro.ml.gradient_boosting import GradientBoostingRegressor
from repro.ml.adaboost import AdaBoostRegressor
from repro.ml.gaussian_process import GaussianProcessRegressor
from repro.ml.svr import SVR
from repro.ml.search import GridSearchCV, ParameterGrid, ParameterSampler, RandomizedSearchCV
from repro.ml.bayes_search import BayesSearchCV

__all__ = [
    "BaseEstimator",
    "RegressorMixin",
    "clone",
    "r2_score",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "median_absolute_error",
    "max_error",
    "explained_variance_score",
    "StandardScaler",
    "MinMaxScaler",
    "PolynomialFeatures",
    "KFold",
    "train_test_split",
    "cross_val_score",
    "cross_validate",
    "cross_val_predict",
    "LinearRegression",
    "Ridge",
    "BayesianRidge",
    "PolynomialRegression",
    "KernelRidge",
    "DecisionTreeRegressor",
    "PackedEnsemble",
    "committee_predictions",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "AdaBoostRegressor",
    "GaussianProcessRegressor",
    "SVR",
    "ParameterGrid",
    "ParameterSampler",
    "GridSearchCV",
    "RandomizedSearchCV",
    "BayesSearchCV",
]
