"""Sweep generation: produce datasets shaped like the paper's training data.

The paper's datasets contain ~2,300 (Aurora) and ~2,500 (Frontier) CCSD
single-iteration measurements covering "a range of problem sizes, tile sizes
and number of nodes of typical use with the application" (Table 1).  The
sweep below enumerates the paper's problem-size catalogue, the allocation
sizes typical for each problem (memory-feasible, not absurdly over-
decomposed) and a tile-size grid, simulates each feasible configuration, and
subsamples to the paper's exact dataset sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.chem.molecules import problem_catalogue
from repro.machines import get_machine
from repro.ml.base import check_random_state
from repro.simulator.ccsd_iteration import CCSDExperiment, run_ccsd_iteration
from repro.simulator.traces import Trace, experiments_to_traces
from repro.tamm.runtime import InfeasibleConfigurationError, TammRuntimeSimulator

__all__ = [
    "DEFAULT_TILE_GRID",
    "PAPER_DATASET_SIZES",
    "SweepConfig",
    "generate_sweep",
    "generate_dataset",
]

#: Tile sizes appearing in the paper's result tables (40–150, plus the odd 73).
DEFAULT_TILE_GRID: tuple[int, ...] = (40, 50, 60, 70, 73, 80, 90, 100, 110, 120, 130, 140, 150)

#: Dataset size breakdowns from Table 1 of the paper: total, train, test.
PAPER_DATASET_SIZES: dict[str, tuple[int, int, int]] = {
    "aurora": (2329, 1746, 583),
    "frontier": (2454, 1840, 614),
}


@dataclass
class SweepConfig:
    """Parameters of a dataset-generation sweep."""

    machine: str = "aurora"
    tile_grid: Sequence[int] = field(default_factory=lambda: list(DEFAULT_TILE_GRID))
    node_grid: Optional[Sequence[int]] = None
    problems: Optional[Sequence[tuple[int, int]]] = None
    apply_noise: bool = True
    seed: Any = 0

    def catalogue(self) -> list[tuple[int, int]]:
        if self.problems is not None:
            return [(int(o), int(v)) for o, v in self.problems]
        return [(m.n_occupied, m.n_virtual) for m in problem_catalogue(self.machine)]


def generate_sweep(config: SweepConfig) -> list[CCSDExperiment]:
    """Simulate every feasible configuration of the sweep.

    Infeasible configurations (out of memory, oversized tiles) are skipped,
    exactly as they would never appear in a real measurement campaign.
    """
    spec = get_machine(config.machine)
    simulator = TammRuntimeSimulator(spec)
    rng = check_random_state(config.seed)

    experiments: list[CCSDExperiment] = []
    for o, v in config.catalogue():
        from repro.chem.orbitals import ProblemSize

        problem = ProblemSize(o, v)
        nodes = simulator.node_range(problem, candidate_nodes=config.node_grid)
        for n_nodes in nodes:
            for tile in config.tile_grid:
                try:
                    exp = run_ccsd_iteration(
                        spec,
                        o,
                        v,
                        n_nodes,
                        int(tile),
                        rng=rng,
                        apply_noise=config.apply_noise,
                        simulator=simulator,
                    )
                except InfeasibleConfigurationError:
                    continue
                experiments.append(exp)
    return experiments


def generate_dataset(
    machine: str = "aurora",
    *,
    n_total: Optional[int] = None,
    seed: Any = 0,
    config: Optional[SweepConfig] = None,
) -> list[Trace]:
    """Generate a dataset of traces sized like the paper's (Table 1).

    Parameters
    ----------
    machine:
        ``"aurora"`` or ``"frontier"``.
    n_total:
        Number of rows to keep; defaults to the paper's dataset size for the
        machine.  ``None``-safe subsampling: if the full sweep produces fewer
        rows than requested, all rows are returned.
    seed:
        Controls both measurement noise and the subsampling.
    config:
        Optional fully custom :class:`SweepConfig`; ``machine`` and ``seed``
        are ignored when given.
    """
    if config is None:
        config = SweepConfig(machine=machine, seed=seed)
    experiments = generate_sweep(config)
    traces = experiments_to_traces(experiments)

    if n_total is None:
        n_total = PAPER_DATASET_SIZES.get(config.machine.lower(), (len(traces),))[0]
    if n_total >= len(traces):
        return traces

    rng = check_random_state(config.seed)
    # Keep at least one row per problem size so every (O, V) the user may ask
    # about is represented, then fill the rest uniformly at random.
    keys = np.array([(t.n_occupied, t.n_virtual) for t in traces])
    keep: set[int] = set()
    for key in np.unique(keys, axis=0):
        members = np.flatnonzero((keys == key).all(axis=1))
        keep.add(int(rng.choice(members)))
    remaining = np.setdiff1d(np.arange(len(traces)), np.asarray(sorted(keep)))
    n_extra = n_total - len(keep)
    extra = rng.choice(remaining, size=n_extra, replace=False)
    selected = np.sort(np.concatenate([np.asarray(sorted(keep)), extra]))
    return [traces[int(i)] for i in selected]
