"""Trace records of simulated CCSD experiments and conversion to tables."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.data.table import Table
from repro.simulator.ccsd_iteration import CCSDExperiment

__all__ = ["Trace", "traces_to_table", "experiments_to_traces"]


@dataclass(frozen=True)
class Trace:
    """One row of the performance dataset: runtime parameters plus wall time.

    This is exactly the schema of the paper's collected data: problem size
    (``O``, ``V``), node count, tile size, and the measured wall time of one
    CCSD iteration, with the derived node-hours cost used by the budget
    question.
    """

    machine: str
    n_occupied: int
    n_virtual: int
    n_nodes: int
    tile_size: int
    runtime_s: float

    @property
    def node_seconds(self) -> float:
        return self.runtime_s * self.n_nodes

    @property
    def node_hours(self) -> float:
        return self.node_seconds / 3600.0

    def features(self) -> tuple[int, int, int, int]:
        return (self.n_occupied, self.n_virtual, self.n_nodes, self.tile_size)


def experiments_to_traces(experiments: Iterable[CCSDExperiment]) -> list[Trace]:
    """Convert full experiment records (with breakdowns) to slim trace rows."""
    return [
        Trace(
            machine=e.machine,
            n_occupied=e.n_occupied,
            n_virtual=e.n_virtual,
            n_nodes=e.n_nodes,
            tile_size=e.tile_size,
            runtime_s=e.runtime_s,
        )
        for e in experiments
    ]


def traces_to_table(traces: Sequence[Trace]) -> Table:
    """Build a column table with the dataset schema used throughout the repo."""
    if len(traces) == 0:
        raise ValueError("Cannot build a table from zero traces.")
    records = [asdict(t) for t in traces]
    table = Table.from_records(records)
    table = table.with_column(
        "node_hours", np.asarray([t.node_hours for t in traces], dtype=np.float64)
    )
    return table
