"""Single-configuration CCSD "experiment" API.

:func:`run_ccsd_iteration` is the synthetic equivalent of submitting one CCSD
job to Aurora or Frontier and timing a single iteration: it returns the same
observables the paper's data collection recorded — the runtime parameters
``(O, V, nodes, tile size)`` and the measured wall time — plus the simulator's
internal breakdown for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.chem.orbitals import ProblemSize
from repro.machines import get_machine
from repro.machines.spec import MachineSpec
from repro.tamm.runtime import IterationBreakdown, TammRuntimeSimulator

__all__ = ["CCSDExperiment", "run_ccsd_iteration"]


@dataclass(frozen=True)
class CCSDExperiment:
    """Result of one simulated CCSD-iteration experiment."""

    machine: str
    n_occupied: int
    n_virtual: int
    n_nodes: int
    tile_size: int
    runtime_s: float
    node_hours: float
    breakdown: IterationBreakdown

    @property
    def features(self) -> tuple[int, int, int, int]:
        """The ⟨O, V, NumNodes, TileSize⟩ feature vector the paper's models use."""
        return (self.n_occupied, self.n_virtual, self.n_nodes, self.tile_size)


def run_ccsd_iteration(
    machine: str | MachineSpec,
    n_occupied: int,
    n_virtual: int,
    n_nodes: int,
    tile_size: int,
    *,
    rng: Any = None,
    apply_noise: bool = True,
    simulator: TammRuntimeSimulator | None = None,
) -> CCSDExperiment:
    """Simulate one CCSD iteration and return the measured experiment record.

    Parameters
    ----------
    machine:
        Machine name (``"aurora"``/``"frontier"``) or a :class:`MachineSpec`.
    n_occupied, n_virtual:
        Problem size (occupied and virtual orbital counts).
    n_nodes, tile_size:
        Runtime parameters being evaluated.
    rng:
        Seed or generator controlling measurement noise.
    apply_noise:
        Disable to obtain the deterministic model time.
    simulator:
        Reuse an existing :class:`TammRuntimeSimulator` (avoids re-building
        the machine model in tight sweep loops).

    Raises
    ------
    repro.tamm.runtime.InfeasibleConfigurationError
        If the configuration would not fit in memory on the machine.
    """
    spec = get_machine(machine) if isinstance(machine, str) else machine
    sim = simulator if simulator is not None else TammRuntimeSimulator(spec)
    problem = ProblemSize(n_occupied, n_virtual)
    breakdown = sim.simulate_iteration(
        problem, n_nodes, tile_size, rng=rng, apply_noise=apply_noise
    )
    return CCSDExperiment(
        machine=spec.name,
        n_occupied=n_occupied,
        n_virtual=n_virtual,
        n_nodes=int(n_nodes),
        tile_size=int(tile_size),
        runtime_s=breakdown.noisy_time,
        node_hours=breakdown.node_hours,
        breakdown=breakdown,
    )
