"""High-level CCSD experiment simulator.

This package stands in for the paper's measured ExaChem/TAMM CCSD runs on
Aurora and Frontier: it exposes a one-call API to "run" a CCSD iteration for
a given configuration and a sweep generator that produces datasets with the
same schema, size and qualitative structure as the paper's training data.
"""

from repro.simulator.ccsd_iteration import CCSDExperiment, run_ccsd_iteration
from repro.simulator.dataset_gen import (
    DEFAULT_TILE_GRID,
    PAPER_DATASET_SIZES,
    SweepConfig,
    generate_dataset,
    generate_sweep,
)
from repro.simulator.traces import Trace, traces_to_table

__all__ = [
    "CCSDExperiment",
    "run_ccsd_iteration",
    "SweepConfig",
    "generate_sweep",
    "generate_dataset",
    "DEFAULT_TILE_GRID",
    "PAPER_DATASET_SIZES",
    "Trace",
    "traces_to_table",
]
