"""Problem-size abstraction for correlated electronic-structure methods."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProblemSize"]


@dataclass(frozen=True)
class ProblemSize:
    """A CCSD problem size expressed in occupied/virtual orbital counts.

    Attributes
    ----------
    n_occupied:
        Number of occupied spatial orbitals ``O`` (doubly occupied in the
        closed-shell reference wavefunction).
    n_virtual:
        Number of virtual (unoccupied) spatial orbitals ``V``.
    """

    n_occupied: int
    n_virtual: int

    def __post_init__(self) -> None:
        if self.n_occupied <= 0:
            raise ValueError(f"n_occupied must be positive, got {self.n_occupied}.")
        if self.n_virtual <= 0:
            raise ValueError(f"n_virtual must be positive, got {self.n_virtual}.")
        if self.n_virtual < self.n_occupied:
            # Physically possible but never the case for the correlated systems
            # studied in the paper; flagging it catches transposed arguments.
            raise ValueError(
                f"Expected n_virtual >= n_occupied, got O={self.n_occupied}, V={self.n_virtual}. "
                "Did you swap the arguments?"
            )

    @property
    def n_orbitals(self) -> int:
        """Total number of molecular orbitals ``N = O + V`` (basis functions)."""
        return self.n_occupied + self.n_virtual

    @property
    def n_electrons(self) -> int:
        """Number of correlated electrons (2 per occupied spatial orbital)."""
        return 2 * self.n_occupied

    @property
    def t1_amplitudes(self) -> int:
        """Number of singles amplitudes ``O * V``."""
        return self.n_occupied * self.n_virtual

    @property
    def t2_amplitudes(self) -> int:
        """Number of doubles amplitudes ``O^2 * V^2``."""
        return self.n_occupied**2 * self.n_virtual**2

    def scaling_estimate(self) -> float:
        """The textbook leading-order iteration cost ``O^2 V^4`` (unitless)."""
        return float(self.n_occupied**2) * float(self.n_virtual) ** 4

    def as_tuple(self) -> tuple[int, int]:
        return (self.n_occupied, self.n_virtual)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(O={self.n_occupied}, V={self.n_virtual})"
