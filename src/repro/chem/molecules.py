"""Catalogue of the CCSD problem sizes evaluated in the paper.

The paper reports results for 22 problem sizes on Aurora (Table 3/5) and 20 on
Frontier (Table 4/6), each identified only by its ``(O, V)`` pair.  The
catalogue below reproduces exactly those pairs; molecule labels are synthetic
(the paper does not name the molecular systems) but carry the (O, V) signature
so traces remain self-describing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.orbitals import ProblemSize

__all__ = [
    "MoleculeSystem",
    "AURORA_PROBLEM_SIZES",
    "FRONTIER_PROBLEM_SIZES",
    "problem_catalogue",
]


@dataclass(frozen=True)
class MoleculeSystem:
    """A molecular system / basis-set combination characterised by (O, V)."""

    label: str
    problem: ProblemSize

    @property
    def n_occupied(self) -> int:
        return self.problem.n_occupied

    @property
    def n_virtual(self) -> int:
        return self.problem.n_virtual


def _catalogue(pairs: list[tuple[int, int]]) -> tuple[MoleculeSystem, ...]:
    return tuple(
        MoleculeSystem(label=f"system_O{o}_V{v}", problem=ProblemSize(o, v)) for o, v in pairs
    )


#: Problem sizes appearing in the Aurora evaluation (Tables 3 and 5).
AURORA_PROBLEM_SIZES: tuple[MoleculeSystem, ...] = _catalogue(
    [
        (44, 260),
        (81, 835),
        (85, 698),
        (99, 718),
        (99, 1021),
        (116, 575),
        (116, 840),
        (116, 1184),
        (134, 523),
        (134, 951),
        (134, 1200),
        (146, 278),
        (146, 591),
        (146, 1096),
        (146, 1568),
        (180, 720),
        (180, 1070),
        (196, 764),
        (204, 969),
        (235, 1007),
        (280, 1040),
        (345, 791),
    ]
)

#: Problem sizes appearing in the Frontier evaluation (Tables 4 and 6).
FRONTIER_PROBLEM_SIZES: tuple[MoleculeSystem, ...] = _catalogue(
    [
        (49, 663),
        (81, 835),
        (85, 698),
        (99, 718),
        (99, 1021),
        (116, 575),
        (116, 840),
        (116, 1184),
        (134, 523),
        (134, 951),
        (134, 1200),
        (146, 591),
        (146, 1096),
        (180, 720),
        (180, 1070),
        (196, 764),
        (204, 969),
        (235, 1007),
        (280, 1040),
        (345, 791),
    ]
)


def problem_catalogue(machine: str) -> tuple[MoleculeSystem, ...]:
    """Return the problem-size catalogue used on a given machine."""
    key = machine.lower()
    if key == "aurora":
        return AURORA_PROBLEM_SIZES
    if key == "frontier":
        return FRONTIER_PROBLEM_SIZES
    raise ValueError(f"Unknown machine {machine!r}; expected 'aurora' or 'frontier'.")
