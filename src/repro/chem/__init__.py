"""Computational-chemistry cost models.

The CCSD problem size is defined by the number of occupied (``O``) and virtual
(``V``) molecular orbitals; one CCSD iteration is dominated by sextic-scaling
tensor contractions (``O(O^2 V^4)``).  This sub-package provides the per-term
flop/memory model of a closed-shell CCSD iteration and the catalogue of
problem sizes used in the paper's evaluation.
"""

from repro.chem.orbitals import ProblemSize
from repro.chem.ccsd_cost import (
    CCSD_TERMS,
    ContractionTerm,
    ccsd_iteration_flops,
    ccsd_memory_bytes,
    term_flops,
)
from repro.chem.molecules import (
    AURORA_PROBLEM_SIZES,
    FRONTIER_PROBLEM_SIZES,
    MoleculeSystem,
    problem_catalogue,
)

__all__ = [
    "ProblemSize",
    "ContractionTerm",
    "CCSD_TERMS",
    "term_flops",
    "ccsd_iteration_flops",
    "ccsd_memory_bytes",
    "MoleculeSystem",
    "AURORA_PROBLEM_SIZES",
    "FRONTIER_PROBLEM_SIZES",
    "problem_catalogue",
]
