"""Per-term flop and memory model of a closed-shell CCSD iteration.

The rate-limiting step of CCSD is the particle-particle ladder contraction
(``O^2 V^4``); the full iteration also contains ``O^3 V^3`` ring terms,
``O^4 V^2`` hole ladders and a collection of smaller singles/intermediate
contractions.  The term list below is a representative decomposition of the
spin-adapted closed-shell CCSD residual equations: coefficients approximate
the number of equivalent contractions at each scaling so the *relative* cost
structure (and therefore how tiling and distribution behave) matches a real
TAMM/ExaChem execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.chem.orbitals import ProblemSize

__all__ = [
    "ContractionTerm",
    "CCSD_TERMS",
    "term_flops",
    "ccsd_iteration_flops",
    "ccsd_memory_bytes",
]

_BYTES_PER_WORD = 8  # double precision


@dataclass(frozen=True)
class ContractionTerm:
    """One tensor-contraction term of the CCSD residual.

    Attributes
    ----------
    name:
        Human-readable label (used in traces and per-term breakdowns).
    o_power, v_power:
        Scaling exponents of the contraction: flops ~ ``O^o_power * V^v_power``.
    coefficient:
        Multiplicity / prefactor accounting for equivalent permutations and
        the factor 2 of multiply-add counting.
    tensor_rank:
        Rank of the largest tensor touched by the term (determines per-task
        block volume when tiled: a rank-4 term moves ``tile^4`` blocks).
    """

    name: str
    o_power: int
    v_power: int
    coefficient: float
    tensor_rank: int = 4

    def flops(self, problem: ProblemSize) -> float:
        """Floating point operations contributed by this term."""
        return (
            self.coefficient
            * float(problem.n_occupied) ** self.o_power
            * float(problem.n_virtual) ** self.v_power
        )


#: Representative decomposition of one closed-shell CCSD iteration.
#: The particle-particle ladder dominates (the paper's "sextic-scaling
#: tensor contractions"); coefficients are chosen so the aggregate cost is
#: ~2x the bare O^2 V^4 count, consistent with published CCSD flop audits.
CCSD_TERMS: tuple[ContractionTerm, ...] = (
    ContractionTerm("pp_ladder", o_power=2, v_power=4, coefficient=2.0, tensor_rank=4),
    ContractionTerm("ph_ring_direct", o_power=3, v_power=3, coefficient=4.0, tensor_rank=4),
    ContractionTerm("ph_ring_exchange", o_power=3, v_power=3, coefficient=4.0, tensor_rank=4),
    ContractionTerm("hh_ladder", o_power=4, v_power=2, coefficient=2.0, tensor_rank=4),
    ContractionTerm("t1_dressing_vvvo", o_power=1, v_power=4, coefficient=2.0, tensor_rank=4),
    ContractionTerm("t1_dressing_oovv", o_power=3, v_power=2, coefficient=2.0, tensor_rank=4),
    ContractionTerm("singles_residual", o_power=2, v_power=3, coefficient=4.0, tensor_rank=3),
    ContractionTerm("intermediates_ovov", o_power=2, v_power=2, coefficient=6.0, tensor_rank=4),
)


def term_flops(term: ContractionTerm, problem: ProblemSize) -> float:
    """Flops of a single term for a given problem size."""
    return term.flops(problem)


def ccsd_iteration_flops(
    problem: ProblemSize, terms: Iterable[ContractionTerm] = CCSD_TERMS
) -> float:
    """Total flops of one CCSD iteration (sum over the term decomposition)."""
    return float(sum(term.flops(problem) for term in terms))


def ccsd_memory_bytes(
    problem: ProblemSize,
    cholesky_factor: float = 3.0,
    store_vvvv: bool = True,
) -> float:
    """Aggregate memory footprint of the persistent CCSD tensors, in bytes.

    The model assumes a Cholesky/density-fitted representation of the two-
    electron integrals (as used by ExaChem), plus the explicitly stored
    all-virtual integral block used by the particle-particle ladder term:

    * three-index Cholesky vectors ``N^2 * n_chol`` with ``n_chol ≈
      cholesky_factor * N``,
    * the ``(vv|vv)`` integral block (``~V^4 / 2`` exploiting symmetry) when
      ``store_vvvv`` is true — the dominant footprint for large basis sets
      and the reason big problems need many nodes even for cheap runs,
    * doubles amplitudes and residual (2 copies of ``O^2 V^2``),
    * one ``O V^3``-sized intermediate,
    * singles amplitudes and Fock-like ``N^2`` matrices (negligible).
    """
    O, V = problem.n_occupied, problem.n_virtual
    N = problem.n_orbitals
    n_chol = cholesky_factor * N
    words = (
        N * N * n_chol          # Cholesky vectors B(pq, L)
        + 2.0 * O * O * V * V   # T2 amplitudes + residual
        + O * V**3              # largest intermediate
        + 4.0 * N * N           # Fock, overlap, small intermediates
    )
    if store_vvvv:
        words += 0.5 * float(V) ** 4
    return float(words * _BYTES_PER_WORD)
