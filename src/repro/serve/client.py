"""Blocking client for the serve service, with the clean-failure contract.

:class:`ServeClient` is the user-facing handle on a running
:class:`~repro.serve.server.ServeServer`: ``predict`` rows, ``ask`` the
STQ/BQ questions, probe ``health``/``stats``.  One persistent connection
per instance, serialised by a lock (one client per thread is the cheap way
to fan out — see ``benchmarks/serve_throughput.py``).

Failure contract (the serve flavour of the PR 3 wire discipline): the memo
client degrades failures to cache misses because a miss is recomputable;
an inference query has no local fallback, so here every failure is a
**clean, immediate error** — never a hang, never a crash, never a silently
wrong answer:

* A dead/unreachable server, a connection reset, a truncated or oversized
  frame, or an undecodable response gets **one** reconnect-and-retry (the
  server may simply have restarted); a second failure raises
  :class:`ServeUnavailableError` and opens a back-off window (doubling,
  capped at 30s) during which calls fail fast instead of re-paying connect
  timeouts.
* A server-side *request* error — unknown model, wrong feature count,
  non-finite values, bad question — raises :class:`ServeError` with the
  server's message; the connection stays up and is not penalised.
* All socket operations carry a timeout, so a black-holed host costs a
  bounded wait, not a hang.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from typing import Any, Optional

import numpy as np

from repro.parallel.wire import (
    MAX_FRAME,
    ProtocolError,
    parse_hostport_url,
    read_frame,
    write_frame,
)
from repro.serve.server import (
    OP_ASK,
    OP_HEALTH,
    OP_PING,
    OP_PREDICT,
    OP_STATS,
    PING_BANNER,
    SERVE_URL_SCHEME,
    ST_OK,
)

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeUnavailableError",
    "parse_serve_url",
]


class ServeError(RuntimeError):
    """The server answered with a request error (bad model, bad input, ...)."""


class ServeUnavailableError(ServeError):
    """No usable server: dead, unreachable, or speaking a broken protocol."""


def parse_serve_url(url: str) -> tuple[str, int]:
    """``serve://host:port`` -> ``(host, port)``; raises ``ValueError`` on junk."""
    return parse_hostport_url(url, SERVE_URL_SCHEME)


class ServeClient:
    """Blocking client for one serve server."""

    def __init__(self, url: str, *, timeout: float = 10.0, retry_delay: float = 0.5) -> None:
        self.host, self.port = parse_serve_url(url)
        self.url = f"{SERVE_URL_SCHEME}{self.host}:{self.port}"
        self.timeout = timeout
        self.retry_delay = retry_delay
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._conn_lock = threading.Lock()
        self._down_until = 0.0
        self._window_failures = 0

    # ---------------------------------------------------------- connection

    def _connect(self) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")

    def _teardown(self) -> None:
        for closer in (self._rfile, self._wfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def close(self) -> None:
        """Drop the connection (the client stays usable; it reconnects lazily)."""
        with self._conn_lock:
            self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(self, payload: bytes) -> tuple[bytes, bytes]:
        """One round trip; raises :class:`ServeUnavailableError` on failure."""
        if len(payload) > MAX_FRAME:
            # A local mistake, not a server fault: fail this call alone
            # without tearing down the connection or opening the back-off.
            raise ServeError(f"request of {len(payload)} bytes exceeds the frame cap")
        with self._conn_lock:
            if time.monotonic() < self._down_until:
                raise ServeUnavailableError(
                    f"serve server {self.url} is down (backing off)"
                )
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._connect()
                    write_frame(self._wfile, payload)
                    response = read_frame(self._rfile)
                    self._window_failures = 0
                    return response[:1], response[1:]
                except (OSError, ProtocolError, struct.error):
                    self._teardown()
            self._window_failures += 1
            backoff = min(
                self.retry_delay * (2 ** (self._window_failures - 1)), 30.0
            )
            self._down_until = time.monotonic() + backoff
            raise ServeUnavailableError(
                f"serve server {self.url} is unreachable or misbehaving "
                f"(retried once; backing off {backoff:.1f}s)"
            )

    def _call(self, op: bytes, fields: Optional[dict] = None) -> dict:
        payload = op if fields is None else op + json.dumps(fields).encode("utf-8")
        status, body = self._request(payload)
        if status != ST_OK:
            raise ServeError(body.decode("utf-8", "replace") or "request failed")
        try:
            out = json.loads(body)
        except ValueError:
            raise ServeUnavailableError("server returned an undecodable response")
        if not isinstance(out, dict):
            raise ServeUnavailableError("server returned a malformed response")
        return out

    # ------------------------------------------------------------- endpoints

    def predict(self, X: Any, model: str = "default") -> np.ndarray:
        """Predict rows of ``X`` (a single feature vector is auto-wrapped).

        The result is byte-identical to ``model.predict(X)`` on the fitted
        model the server hosts: features and predictions cross the wire as
        JSON numbers, which round-trip float64 exactly.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        out = self._call(OP_PREDICT, {"model": model, "X": X.tolist()})
        # A version-skewed or rogue server answering OK without one numeric
        # prediction per requested row: a loud error, never a silently
        # short, empty or non-numeric result.
        y = out.get("y")
        if isinstance(y, list) and len(y) == X.shape[0]:
            try:
                arr = np.asarray(y, dtype=np.float64)
            except (TypeError, ValueError):
                arr = None
            if arr is not None and arr.shape == (X.shape[0],):
                return arr
        raise ServeUnavailableError("server returned a malformed prediction")

    def ask(
        self, question: str, n_occupied: int, n_virtual: int, model: str = "default"
    ) -> dict:
        """Answer STQ/BQ for a problem size; returns the answer dict."""
        out = self._call(
            OP_ASK,
            {
                "model": model,
                "question": question,
                "n_occupied": int(n_occupied),
                "n_virtual": int(n_virtual),
            },
        )
        answer = out.get("answer")
        if not isinstance(answer, dict):
            raise ServeUnavailableError("server returned a malformed answer")
        return answer

    def health(self) -> dict:
        """The server's liveness document."""
        return self._call(OP_HEALTH)

    def stats(self) -> dict:
        """The server's counters (requests, batching, registry, uptime)."""
        return self._call(OP_STATS)

    def ping(self) -> bool:
        """True when a serve server answers the protocol handshake."""
        try:
            status, body = self._request(OP_PING)
        except ServeError:
            return False
        return status == ST_OK and body == PING_BANNER
