"""Blocking client for the serve service, with the clean-failure contract.

:class:`ServeClient` is the user-facing handle on one — or, since PR 8, a
*fleet* of — running :class:`~repro.serve.server.ServeServer` replicas:
``predict`` rows, ``ask`` the STQ/BQ questions, probe ``health``/``stats``.
One persistent connection per replica per instance, each serialised by its
own lock (one client per thread is the cheap way to fan out — see
``benchmarks/serve_throughput.py``).

Fleet routing: constructed with several ``serve://`` URLs, the client
consistent-hashes each request — the hash key is the full request payload,
which embeds the opcode, the model alias and the request body — onto a
ring of replica vnodes.  Equal requests always prefer the same replica
(cache/batch affinity), different aliases spread across the fleet, and the
ring gives every request a *deterministic failover order*: when the
preferred replica is unreachable, in back-off, or sheds the request as
``overloaded``, the client walks to the next distinct replica instead of
failing.  A dead replica therefore degrades capacity, not availability —
and because every replica serves the same registry artifacts, the answer
is byte-identical no matter which replica produced it.

Failure contract (the serve flavour of the PR 3 wire discipline): the memo
client degrades failures to cache misses because a miss is recomputable;
an inference query has no local fallback, so here every failure is a
**clean, immediate error** — never a hang, never a crash, never a silently
wrong answer:

* A dead/unreachable replica, a connection reset, a truncated or oversized
  frame, or an undecodable response gets **one** reconnect-and-retry (the
  server may simply have restarted); a second failure trips that replica's
  circuit (see :mod:`repro.parallel.resilience`: a jittered cooldown that
  doubles per consecutive trip, capped at 30s) and the client fails over
  to the next replica on the ring.  An open-circuit replica *leaves the
  ring* — other requests stop hashing onto it — and re-enters when its
  half-open probe succeeds.  When every replica has failed, the call
  retries whole rounds under a budgeted, jittered
  :class:`~repro.parallel.resilience.RetryPolicy` and only then raises
  :class:`ServeUnavailableError` — bounded by ``retries`` and
  ``deadline``, never an unbounded loop.
* A replica answering ``overloaded: ...`` (request-budget, pending-depth
  or connection-cap shed) is a **healthy** refusal: the request lands on
  the next replica, the circuit is untouched, and only when the whole
  fleet sheds does the client back off (same budgeted jittered policy)
  and finally raise :class:`ServeOverloadedError` — the retryable
  flavour, distinct from dead (the shed-vs-dead contract).
* A server-side *request* error — unknown model, wrong feature count,
  non-finite values, bad question — raises :class:`ServeError` with the
  server's message immediately: the request itself is wrong and would be
  wrong on every replica.
* All socket operations carry a timeout, so a black-holed host costs a
  bounded wait, not a hang.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
import threading
import time
from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np

from repro.obs import trace as obs_trace
from repro.parallel.resilience import (
    CLOSED,
    HealthTracker,
    RetryPolicy,
    policy_rng,
)
from repro.parallel.wire import (
    MAX_FRAME,
    ProtocolError,
    fetch_telemetry,
    negotiate_caps,
    parse_hostport_url,
    read_frame,
    wrap_context,
    write_frame,
)
from repro.serve.server import (
    OP_ASK,
    OP_HEALTH,
    OP_PING,
    OP_PREDICT,
    OP_STATS,
    PING_BANNER,
    SERVE_URL_SCHEME,
    ST_OK,
    _OP_NAMES,
)

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeUnavailableError",
    "ServeOverloadedError",
    "parse_serve_url",
]

#: Vnodes per replica on the consistent-hash ring.  Enough to spread load
#: evenly across a handful of replicas; cheap to build.
_VNODES = 32

#: Error-body prefix by which a shed (overloaded) refusal is recognised.
_OVERLOADED_PREFIX = "overloaded"


class ServeError(RuntimeError):
    """The server answered with a request error (bad model, bad input, ...)."""


class ServeUnavailableError(ServeError):
    """No usable server: dead, unreachable, or speaking a broken protocol."""


class ServeOverloadedError(ServeError):
    """Every reachable replica shed the request; retry after a beat.

    Distinct from :class:`ServeUnavailableError`: the fleet is alive and
    healthy, it is *at capacity right now* — the retryable condition
    admission control promises instead of an unbounded queue.
    """


def parse_serve_url(url: str) -> tuple[str, int]:
    """``serve://host:port`` -> ``(host, port)``; raises ``ValueError`` on junk."""
    return parse_hostport_url(url, SERVE_URL_SCHEME)


class _Replica:
    """One replica's connection state: socket, lock, request counter.

    Health (circuit state, backoff windows) lives in the client's shared
    :class:`~repro.parallel.resilience.HealthTracker`, keyed by URL.
    """

    def __init__(self, url: str) -> None:
        self.host, self.port = parse_serve_url(url)
        self.url = f"{SERVE_URL_SCHEME}{self.host}:{self.port}"
        self.sock: Optional[socket.socket] = None
        self.rfile = None
        self.wfile = None
        self.lock = threading.Lock()
        self.requests = 0
        # Wire extensions this connection's peer speaks; None = not yet
        # probed.  Probing happens lazily, and only when tracing is on —
        # with tracing off the client's bytes are identical to PR 9.
        self.caps: Optional[frozenset] = None

    def teardown(self) -> None:
        for closer in (self.rfile, self.wfile, self.sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self.sock = self.rfile = self.wfile = None
        self.caps = None


class ServeClient:
    """Blocking client for a serve server, or a fleet of replicas.

    ``url`` accepts a single ``serve://host:port``, a comma-separated list,
    or any sequence of URLs.  With one URL the behaviour is exactly the
    single-server client of PR 5; with several, requests consistent-hash
    across the fleet with deterministic failover (see module docstring).
    """

    def __init__(
        self,
        url: Union[str, Sequence[str]],
        *,
        timeout: float = 10.0,
        retry_delay: float = 0.5,
        retries: int = 2,
        deadline: Optional[float] = 15.0,
        retry_seed: object = None,
    ) -> None:
        if isinstance(url, str):
            urls: Iterable[str] = url.split(",")
        else:
            urls = url
        seen: dict[str, None] = {}
        replicas = []
        for u in urls:
            u = u.strip()
            if not u:
                continue
            replica = _Replica(u)
            if replica.url in seen:
                continue
            seen[replica.url] = None
            replicas.append(replica)
        if not replicas:
            raise ValueError("ServeClient needs at least one serve:// URL.")
        self._replicas = replicas
        self.urls = [r.url for r in replicas]
        # Back-compat: the single-server surface everyone already uses.
        self.url = replicas[0].url
        self.host, self.port = replicas[0].host, replicas[0].port
        self.timeout = timeout
        self.retry_delay = retry_delay
        self._rng = policy_rng(retry_seed)
        #: Fleet-level retry rounds: after every replica in a routing pass
        #: has refused (dead *or* overloaded), back off jittered and try
        #: the whole ring again — bounded by the budget and the deadline.
        self._policy = RetryPolicy(
            retries=retries,
            base_delay=retry_delay,
            max_delay=30.0,
            jitter=0.5,
            deadline=deadline,
        )
        self.circuits = HealthTracker(
            cooldown=RetryPolicy(
                retries=None,
                base_delay=retry_delay,
                max_delay=30.0,
                jitter=0.5,
            ),
            rng=self._rng,
        )
        for replica in replicas:  # pre-register: stats show every replica
            self.circuits.state(replica.url)
        self._ring_cache: dict[tuple[int, ...], list[tuple[int, int]]] = {}
        self._fleet_lock = threading.Lock()
        self._failovers = 0
        self._overloaded = 0
        self._retry_rounds = 0

    # ------------------------------------------------------------------ ring

    def _ring_for(self, indices: tuple[int, ...]) -> list[tuple[int, int]]:
        """``[(point, replica_index)]`` over a replica subset, cached.

        The subset is the *routable* membership from the health tracker;
        an open-circuit replica simply contributes no vnodes, so its keys
        re-hash onto the survivors, and the cache (keyed by membership)
        makes a rebuild a dict hit unless a circuit actually flipped.
        """
        ring = self._ring_cache.get(indices)
        if ring is None:
            ring = []
            for idx in indices:
                url = self._replicas[idx].url
                for vnode in range(_VNODES):
                    point = int.from_bytes(
                        hashlib.sha1(
                            f"{url}#{vnode}".encode("utf-8")
                        ).digest()[:8],
                        "big",
                    )
                    ring.append((point, idx))
            ring.sort()
            self._ring_cache[indices] = ring
        return ring

    def _routable_indices(self) -> tuple[int, ...]:
        """Replicas whose circuit is closed; all of them when none is."""
        active = tuple(
            idx
            for idx, replica in enumerate(self._replicas)
            if self.circuits.routable(replica.url)
        )
        if active:
            return active
        # Whole fleet tripped: route over everyone — attempts fail fast
        # against open circuits but carry proper per-replica errors, and
        # half-open probes get their chance below.
        return tuple(range(len(self._replicas)))

    def _route(self, key: bytes) -> list[int]:
        """Replica indices in preference order for this request key.

        The key's ring position picks the home replica; walking clockwise
        yields each remaining *routable* replica exactly once, so failover
        order is deterministic per request and different keys drain to
        different survivors when a replica dies.
        """
        indices = self._routable_indices()
        if len(indices) == 1:
            return [indices[0]]
        ring = self._ring_for(indices)
        point = int.from_bytes(hashlib.sha1(key).digest()[:8], "big")
        # Binary search would shave a few microseconds; the ring has a few
        # dozen entries, so a scan keeps it obvious.
        start = 0
        for i, (node_point, _) in enumerate(ring):
            if node_point >= point:
                start = i
                break
        order: list[int] = []
        for i in range(len(ring)):
            idx = ring[(start + i) % len(ring)][1]
            if idx not in order:
                order.append(idx)
                if len(order) == len(indices):
                    break
        return order

    def _order(self, key: bytes) -> list[tuple[int, bool]]:
        """``[(replica_index, is_probe)]`` for one routing pass.

        Half-open replicas are not on the ring, but each claimable probe
        is prepended so recovery traffic exists even when the rest of the
        fleet is healthy: one trial request re-closes the circuit (the
        replica re-enters the ring) or re-opens it with a doubled window.
        """
        probes = [
            idx
            for idx, replica in enumerate(self._replicas)
            if self.circuits.claim_probe(replica.url)
        ]
        order = [(idx, True) for idx in probes]
        order.extend(
            (idx, False) for idx in self._route(key) if idx not in probes
        )
        return order

    # ---------------------------------------------------------- connection

    def close(self) -> None:
        """Drop all connections (the client stays usable; reconnects lazily)."""
        for replica in self._replicas:
            with replica.lock:
                replica.teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _connect(self, replica: _Replica) -> None:
        sock = socket.create_connection(
            (replica.host, replica.port), timeout=self.timeout
        )
        sock.settimeout(self.timeout)
        replica.sock = sock
        replica.rfile = sock.makefile("rb")
        replica.wfile = sock.makefile("wb")

    def _request_replica(
        self, replica: _Replica, payload: bytes, *, probe: bool = False
    ) -> tuple[bytes, bytes]:
        """One round trip to one replica; ``ServeUnavailableError`` on failure.

        An open (or unprobed half-open) circuit fails fast without
        touching the socket; ``probe=True`` bypasses the gate for the
        claimed half-open trial request and for ``ping``.
        """
        with replica.lock:
            if not probe and self.circuits.state(replica.url) != CLOSED:
                remaining = self.circuits.open_remaining(replica.url)
                raise ServeUnavailableError(
                    f"serve server {replica.url} is down "
                    f"(circuit open; backing off {remaining:.1f}s)"
                )
            replica.requests += 1
            for attempt in (0, 1):
                try:
                    if replica.sock is None:
                        self._connect(replica)
                    # Trace context is attached at *send* time, never in
                    # the routing key: per-request trace ids must not
                    # scatter the consistent-hash ring.  Old peers (no
                    # "context" cap) get the bare payload — that is the
                    # mixed-fleet contract.
                    wire_payload = payload
                    context = obs_trace.wire_context()
                    if context is not None:
                        if replica.caps is None:
                            replica.caps = negotiate_caps(
                                replica.rfile, replica.wfile
                            )
                        if "context" in replica.caps:
                            wire_payload = wrap_context(payload, context)
                    write_frame(replica.wfile, wire_payload)
                    response = read_frame(replica.rfile)
                    self.circuits.record_success(replica.url)
                    return response[:1], response[1:]
                except (OSError, ProtocolError, struct.error):
                    replica.teardown()
            self.circuits.record_failure(replica.url)
            remaining = self.circuits.open_remaining(replica.url)
            raise ServeUnavailableError(
                f"serve server {replica.url} is unreachable or misbehaving "
                f"(retried once; backing off {remaining:.1f}s)"
            )

    def _request(self, payload: bytes) -> tuple[bytes, bytes]:
        """One fleet-routed round trip (raw status + body, no failover).

        Kept for the handshake path (``ping``) and tests; ``_call`` layers
        failover and retry rounds on top.
        """
        return self._request_replica(self._replicas[self._route(payload)[0]], payload)

    def _bad_response(self, replica: _Replica, reason: str) -> ServeUnavailableError:
        """A decodable-frame-undecodable-body reply: count it as a failure.

        The frame round trip succeeded (so ``_request_replica`` recorded a
        success), but a body that cannot parse means the replica — or the
        path to it — is corrupting responses; that is sickness, not load.
        """
        self.circuits.record_failure(replica.url)
        return ServeUnavailableError(f"server {replica.url} returned {reason}")

    def _call(self, op: bytes, fields: Optional[dict] = None) -> dict:
        payload = op if fields is None else op + json.dumps(fields).encode("utf-8")
        if len(payload) > MAX_FRAME:
            # A local mistake, not a server fault: fail this call alone
            # without tearing down connections or opening back-off windows.
            raise ServeError(f"request of {len(payload)} bytes exceeds the frame cap")
        # The client-side span of this request: its duration is the full
        # client wait (routing, failover, backoff rounds included) and its
        # context rides the wire to whichever replica answers.
        with obs_trace.span(
            "serve.call", tags={"op": _OP_NAMES.get(op, repr(op))}
        ) as call_span:
            retry = self._policy.start(self._rng)
            while True:
                last_error: Optional[ServeError] = None
                for position, (idx, probe) in enumerate(self._order(payload)):
                    replica = self._replicas[idx]
                    if position > 0:
                        with self._fleet_lock:
                            self._failovers += 1
                    try:
                        status, body = self._request_replica(
                            replica, payload, probe=probe
                        )
                    except ServeUnavailableError as exc:
                        last_error = exc
                        continue
                    if status != ST_OK:
                        try:
                            message = body.decode("utf-8") or "request failed"
                        except UnicodeDecodeError:
                            # A garbled error body is wire rot, not a verdict
                            # on the request: retryable, never ServeError.
                            last_error = self._bad_response(
                                replica, "an undecodable error body"
                            )
                            continue
                        if message.startswith(_OVERLOADED_PREFIX):
                            # Healthy refusal: try the next replica, remember
                            # the retryable flavour in case everyone refuses.
                            # The circuit is untouched — shed is not dead.
                            self.circuits.record_overload(replica.url)
                            with self._fleet_lock:
                                self._overloaded += 1
                            last_error = ServeOverloadedError(message)
                            continue
                        # The request itself is wrong; every replica would
                        # agree.
                        raise ServeError(message)
                    try:
                        out = json.loads(body)
                    except ValueError:
                        last_error = self._bad_response(
                            replica, "an undecodable response"
                        )
                        continue
                    if not isinstance(out, dict):
                        last_error = self._bad_response(
                            replica, "a malformed response"
                        )
                        continue
                    call_span.set_tag("replica", replica.url)
                    return out
                # The whole pass refused (dead or shedding): back off under
                # the budgeted jittered policy and try another round.
                delay = retry.note_failure()
                if delay is None:
                    raise last_error or ServeUnavailableError(
                        "no serve replica available"
                    )
                with self._fleet_lock:
                    self._retry_rounds += 1
                time.sleep(delay)

    # ------------------------------------------------------------- endpoints

    def predict(self, X: Any, model: str = "default") -> np.ndarray:
        """Predict rows of ``X`` (a single feature vector is auto-wrapped).

        The result is byte-identical to ``model.predict(X)`` on the fitted
        model the server hosts — whichever replica answers: features and
        predictions cross the wire as JSON numbers, which round-trip
        float64 exactly.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        out = self._call(OP_PREDICT, {"model": model, "X": X.tolist()})
        # A version-skewed or rogue server answering OK without one numeric
        # prediction per requested row: a loud error, never a silently
        # short, empty or non-numeric result.
        y = out.get("y")
        if isinstance(y, list) and len(y) == X.shape[0]:
            try:
                arr = np.asarray(y, dtype=np.float64)
            except (TypeError, ValueError):
                arr = None
            if arr is not None and arr.shape == (X.shape[0],):
                return arr
        raise ServeUnavailableError("server returned a malformed prediction")

    def ask(
        self, question: str, n_occupied: int, n_virtual: int, model: str = "default"
    ) -> dict:
        """Answer STQ/BQ for a problem size; returns the answer dict."""
        out = self._call(
            OP_ASK,
            {
                "model": model,
                "question": question,
                "n_occupied": int(n_occupied),
                "n_virtual": int(n_virtual),
            },
        )
        answer = out.get("answer")
        if not isinstance(answer, dict):
            raise ServeUnavailableError("server returned a malformed answer")
        return answer

    def health(self) -> dict:
        """A server's liveness document (fleet-routed like any request)."""
        return self._call(OP_HEALTH)

    def stats(self) -> dict:
        """A server's counters (requests, batching, registry, uptime)."""
        return self._call(OP_STATS)

    def ping(self) -> bool:
        """True when any replica answers the protocol handshake."""
        for replica in self._replicas:
            try:
                # probe=True: a ping must touch the real socket even when
                # the circuit is open — and its outcome heals the circuit.
                status, body = self._request_replica(replica, OP_PING, probe=True)
            except ServeError:
                continue
            if status == ST_OK and body == PING_BANNER:
                return True
        return False

    def fleet_stats(self) -> dict:
        """Client-side routing counters and per-replica circuit health.

        ``replicas`` merges the request counter with the health tracker's
        snapshot — circuit state, failure EWMA, overload/trip counts and
        last-failure age — so an operator sees a degraded replica here
        instead of grepping server logs.
        """
        with self._fleet_lock:
            failovers, overloaded = self._failovers, self._overloaded
            retry_rounds = self._retry_rounds
        health = self.circuits.snapshot()
        replicas = {}
        for r in self._replicas:
            info = dict(health.get(r.url, {}))
            info["requests"] = r.requests
            replicas[r.url] = info
        return {
            "urls": list(self.urls),
            "requests": {r.url: r.requests for r in self._replicas},
            "failovers": failovers,
            "overloaded": overloaded,
            "retry_rounds": retry_rounds,
            "replicas": replicas,
        }

    def fleet_telemetry(self, *, timeout: Optional[float] = None) -> dict:
        """Server-side telemetry snapshot per replica, scraped over the wire.

        Each reachable replica contributes its versioned snapshot (the
        ``telemetry`` opcode: metrics, legacy stats, recent spans); an
        unreachable or pre-observability replica contributes an ``error``
        entry instead of failing the whole scrape.  One fresh connection
        per replica, so the scrape never perturbs the request sockets.
        """
        out: dict[str, dict] = {}
        for replica in self._replicas:
            try:
                out[replica.url] = fetch_telemetry(
                    replica.host,
                    replica.port,
                    timeout=self.timeout if timeout is None else timeout,
                )
            except (OSError, ProtocolError) as exc:
                out[replica.url] = {"error": str(exc)}
        return out
