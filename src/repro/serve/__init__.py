"""repro.serve — online inference: hot fitted models behind a socket.

The serving layer (PR 5) closes the gap between the batch world (fit,
sweep, exit) and the ROADMAP's north star of serving heavy query traffic:
a fitted model is published once to a content-addressed
:class:`ModelRegistry`, warm-loaded by a :class:`ServeServer` that keeps
its packed arenas hot, and queried by many concurrent
:class:`ServeClient` users whose predict requests the
:class:`MicroBatcher` coalesces into single packed traversals.

The two load-bearing contracts (see ROADMAP "serving contract"):

* **Parity** — a served, micro-batched, concurrently-issued prediction is
  byte-identical to calling the fitted model locally, one request at a
  time.
* **Clean failure** — a dead server, truncated/oversized frame or
  malformed request yields a clean error (``ServeError`` /
  ``ServeUnavailableError``) after one reconnect attempt, with back-off —
  never a hang, never a crash, and nothing a client sends can kill the
  server.

Operational front ends: ``repro-chem serve`` and ``repro-chem query``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import (
    ServeClient,
    ServeError,
    ServeUnavailableError,
    parse_serve_url,
)
from repro.serve.registry import REGISTRY_FORMAT_VERSION, ModelRegistry, warm_model
from repro.serve.server import SERVE_PROTOCOL_VERSION, SERVE_URL_SCHEME, ServeServer

__all__ = [
    "MicroBatcher",
    "ModelRegistry",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServeUnavailableError",
    "SERVE_PROTOCOL_VERSION",
    "SERVE_URL_SCHEME",
    "REGISTRY_FORMAT_VERSION",
    "parse_serve_url",
    "warm_model",
]
