"""repro.serve — online inference: hot fitted models behind a socket.

The serving layer (PR 5) closes the gap between the batch world (fit,
sweep, exit) and the ROADMAP's north star of serving heavy query traffic:
a fitted model is published once to a content-addressed
:class:`ModelRegistry`, warm-loaded by a :class:`ServeServer` that keeps
its packed arenas hot, and queried by many concurrent
:class:`ServeClient` users whose predict requests the
:class:`MicroBatcher` coalesces into single packed traversals.

The fleet layer (PR 8) scales that out: one server hosts *many* models
(request aliases route through the registry, LRU-capped residents, one
shared packed-arena copy per host via :mod:`repro.serve.arena`), bounds
overload with request-level admission control (shed requests fail with the
retryable ``overloaded`` flavour, :class:`ServeOverloadedError`), and the
client consistent-hashes requests across several replicas with
deterministic failover — a dead replica degrades capacity, not
availability.

The two load-bearing contracts (see ROADMAP "serve fleet contract"):

* **Parity** — a served, micro-batched, concurrently-issued, fleet-routed
  prediction is byte-identical to calling the fitted model locally, one
  request at a time — regardless of which replica answered.
* **Clean failure** — a dead server, truncated/oversized frame or
  malformed request yields a clean error (``ServeError`` /
  ``ServeUnavailableError`` / ``ServeOverloadedError``) after bounded
  retries, with back-off and failover — never a hang, never a crash, and
  nothing a client sends can kill the server.

Operational front ends: ``repro-chem serve`` and ``repro-chem query``.
"""

from repro.serve.arena import SharedArena, attach_shared_arena, share_packed
from repro.serve.batcher import MicroBatcher
from repro.serve.client import (
    ServeClient,
    ServeError,
    ServeOverloadedError,
    ServeUnavailableError,
    parse_serve_url,
)
from repro.serve.registry import REGISTRY_FORMAT_VERSION, ModelRegistry, warm_model
from repro.serve.server import SERVE_PROTOCOL_VERSION, SERVE_URL_SCHEME, ServeServer

__all__ = [
    "MicroBatcher",
    "ModelRegistry",
    "ServeClient",
    "ServeError",
    "ServeOverloadedError",
    "ServeServer",
    "ServeUnavailableError",
    "SharedArena",
    "SERVE_PROTOCOL_VERSION",
    "SERVE_URL_SCHEME",
    "REGISTRY_FORMAT_VERSION",
    "attach_shared_arena",
    "parse_serve_url",
    "share_packed",
    "warm_model",
]
