"""Content-addressed registry of fitted models for the serving layer.

Today every cost-prediction or advisor query pays a full dataset build and
model fit (~20s for the paper's deployed GB-750×depth-10 configuration).
:class:`ModelRegistry` snapshots a *fitted* estimator once and lets every
subsequent server start warm-load it in milliseconds:

* **Content-addressed artifacts** — an artifact is the pickled model (which
  for tree ensembles is the packed-arena form of :mod:`repro.ml.packed`, a
  fraction of the object-graph size) wrapped in a magic-prefixed, versioned
  payload, stored under the SHA-1 of its own bytes.  Equal fits produce
  equal blobs produce equal digests: publishing the same model twice is a
  no-op, and a digest uniquely identifies the exact bytes that will be
  served.
* **Atomic publication** — the memo store's write-then-rename discipline: a
  reader never observes a partial artifact, and concurrent publishers of
  the same content are last-writer-wins on identical bytes.
* **Named aliases** — a human name (``aurora-fast-seed0``) maps to a digest
  through a small JSON file, republished atomically on every publish, so
  "the deployed aurora model" is one stable handle whose target digest
  moves only when a new fit is published.
* **Corruption-tolerant loads** — a truncated, garbled, version-stale or
  digest-mismatched artifact reads as a miss (the caller refits and
  republishes), never as a crash or a silently wrong model: the payload's
  SHA-1 is re-verified against its address on every load.
* **Warm loading** — :func:`warm_model` forces the packed arenas *and*
  their lazily-built traversal tables into existence before the first
  request, so serving latency never pays the one-off table build.

Layout::

    <root>/artifacts/<aa>/<digest[2:]>.pkl
    <root>/aliases/<name>.json
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import threading
import time
from pathlib import Path
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["ModelRegistry", "warm_model", "REGISTRY_FORMAT_VERSION"]

#: Bump to invalidate every previously published artifact.
REGISTRY_FORMAT_VERSION = 1

_MAGIC_PREFIX = b"RPMODEL"
_MAGIC = _MAGIC_PREFIX + bytes([REGISTRY_FORMAT_VERSION]) + b"\n"

#: Alias names become file names; anything fancier is rejected before it can
#: escape the registry directory (same discipline as memo-store namespaces).
_ALIAS_RE = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]{0,63}$")
_DIGEST_RE = re.compile(r"^[0-9a-f]{40}$")


def warm_model(model: Any) -> Any:
    """Force packed arenas and traversal tables hot; returns ``model``.

    Walks the estimator shapes the serving layer hosts — a
    :class:`~repro.core.advisor.ResourceAdvisor` (``.estimator``), a
    :class:`~repro.core.estimator.ResourceEstimator` (``.model_``), or a
    bare ensemble with the ``_packed_ensemble()`` surface — and builds the
    arena plus its level-major traversal tables now, so the first request
    against a freshly (warm-)loaded model costs a steady-state traversal,
    not the one-off table build.
    """
    seen = set()
    node = model
    while id(node) not in seen and node is not None:
        seen.add(id(node))
        build = getattr(node, "_packed_ensemble", None)
        if callable(build):
            packed = build()
            if packed is not None:
                packed._traversal()
        node = getattr(node, "estimator", None) or getattr(node, "model_", None)
    return model


class ModelRegistry:
    """A directory of fitted-model artifacts shared by server starts.

    The registry never *fits* anything: callers publish models they fitted
    and load models somebody published.  All counters are per-instance
    (``publishes``/``loads``/``misses``/``errors``), updated under a stats
    lock — registries are shared across ``ThreadingTCPServer`` handler
    threads, where unlocked ``+=`` drops increments — and surface through
    the serve server's ``stats`` endpoint.
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root).expanduser()
        self._artifacts = self.root / "artifacts"
        self._aliases = self.root / "aliases"
        self._artifacts.mkdir(parents=True, exist_ok=True)
        self._aliases.mkdir(parents=True, exist_ok=True)
        self._stats_lock = threading.Lock()
        # PR 10: counters live on the typed metrics registry; the legacy
        # attribute names below are read-only views.  The stats lock still
        # makes multi-counter bumps (misses+errors) one atomic step so a
        # concurrent stats() read never sees half an event.
        self.metrics = MetricsRegistry()
        self._counters = {
            name: self.metrics.counter(f"registry.{name}")
            for name in ("publishes", "loads", "misses", "errors")
        }
        self._h_load_seconds = self.metrics.histogram("registry.load_seconds")

    def _count(self, **deltas: int) -> None:
        """Bump counters atomically (``_count(misses=1, errors=1)``)."""
        with self._stats_lock:
            for name, delta in deltas.items():
                self._counters[name].inc(delta)

    @property
    def publishes(self) -> int:
        return self._counters["publishes"].value

    @property
    def loads(self) -> int:
        return self._counters["loads"].value

    @property
    def misses(self) -> int:
        return self._counters["misses"].value

    @property
    def errors(self) -> int:
        return self._counters["errors"].value

    # ------------------------------------------------------------------ paths

    @property
    def location(self) -> str:
        return str(self.root)

    def artifact_path(self, digest: str) -> Path:
        return self._artifacts / digest[:2] / (digest[2:] + ".pkl")

    def _alias_path(self, name: str) -> Path:
        if not _ALIAS_RE.match(name):
            raise ValueError(
                f"Registry alias {name!r} is not a valid name "
                f"(must match {_ALIAS_RE.pattern})."
            )
        return self._aliases / (name + ".json")

    @staticmethod
    def _atomic_write(path: Path, blob: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ---------------------------------------------------------------- publish

    def publish(
        self, model: Any, name: Optional[str] = None, meta: Optional[dict] = None
    ) -> str:
        """Snapshot a fitted model; returns its content digest.

        The artifact is the versioned pickle of ``model`` (tree ensembles
        ride the packed-arena pickle form automatically), addressed by the
        SHA-1 of the payload bytes and published atomically.  When ``name``
        is given, the alias is (re)pointed at the new digest afterwards —
        readers see either the old complete artifact or the new one, never
        a half state.
        """
        blob = _MAGIC + pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha1(blob).hexdigest()
        path = self.artifact_path(digest)
        if not path.exists():
            self._atomic_write(path, blob)
        if name is not None:
            alias = {
                "digest": digest,
                "meta": dict(meta or {}),
                "published_unix": time.time(),
            }
            self._atomic_write(
                self._alias_path(name), json.dumps(alias, indent=2).encode("utf-8")
            )
        self._count(publishes=1)
        return digest

    # ------------------------------------------------------------------- load

    def resolve(self, ref: str) -> Optional[str]:
        """Alias name or digest -> digest (``None`` when unknown)."""
        if _DIGEST_RE.match(ref):
            return ref
        try:
            payload = json.loads(self._alias_path(ref).read_text())
            digest = payload.get("digest", "")
        except (OSError, ValueError):
            return None
        return digest if _DIGEST_RE.match(digest) else None

    def load(self, ref: str, *, warm: bool = True) -> Optional[Any]:
        """Load a model by alias or digest, or ``None`` on any kind of miss.

        A missing, truncated, version-stale or content-mismatched artifact
        is a miss (counted; mismatches also count as ``errors`` and the
        poisoned file is best-effort discarded) — the caller refits and
        republishes, mirroring the memo store's corruption tolerance.
        """
        loaded = self.load_with_digest(ref, warm=warm)
        return None if loaded is None else loaded[1]

    def load_with_digest(
        self, ref: str, *, warm: bool = True
    ) -> Optional[tuple[str, Any]]:
        """:meth:`load`, but returning ``(digest, model)``.

        The serving layer needs the digest *the load actually verified
        against* — it keys the host-shared arena segment — and resolving
        the alias again after the load would race a concurrent republish.
        """
        t0 = time.perf_counter()
        digest = self.resolve(ref)
        if digest is None:
            self._count(misses=1)
            return None
        path = self.artifact_path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            self._count(misses=1)
            return None
        if not blob.startswith(_MAGIC) or hashlib.sha1(blob).hexdigest() != digest:
            self._count(misses=1, errors=1)
            self._discard(path)
            return None
        try:
            model = pickle.loads(blob[len(_MAGIC):])
        except Exception:
            self._count(misses=1, errors=1)
            self._discard(path)
            return None
        self._count(loads=1)
        result = digest, (warm_model(model) if warm else model)
        self._h_load_seconds.observe(time.perf_counter() - t0)
        return result

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ----------------------------------------------------------- introspection

    def aliases(self) -> dict[str, dict]:
        """Every parseable alias record, keyed by name (unparseable skipped)."""
        out: dict[str, dict] = {}
        for path in sorted(self._aliases.glob("*.json")):
            try:
                out[path.stem] = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
        return out

    def artifacts(self) -> list[str]:
        """Digests of every artifact currently on disk."""
        out = []
        for prefix in sorted(self._artifacts.iterdir()) if self._artifacts.is_dir() else []:
            if not prefix.is_dir():
                continue
            for path in sorted(prefix.glob("*.pkl")):
                out.append(prefix.name + path.name[: -len(".pkl")])
        return out

    def stats(self) -> dict[str, int]:
        with self._stats_lock:
            counters = {
                name: counter.value for name, counter in self._counters.items()
            }
        counters["artifacts"] = len(self.artifacts())
        return counters
