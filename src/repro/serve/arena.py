"""Shared-memory packed arenas: one model copy per host, many serve workers.

A :class:`~repro.ml.packed.PackedEnsemble` is a handful of flat
C-contiguous ndarrays — by construction it is mmap-ready.  This module puts
those arrays into one ``multiprocessing.shared_memory`` segment, keyed by
the model's registry digest, so every serve worker on a host that loads the
same artifact maps the *same physical pages* instead of each holding a
private copy of the deployment-scale arena.

Protocol (all inside the segment, so discovery needs nothing but the name):

* The segment name is a pure function of the content key
  (``repro-arena-<version>-<digest prefix>``), so workers rendezvous
  without any coordination channel.
* A fixed header — magic, format version, a ready flag, a JSON field table
  (dtype/shape/offset per array) — is followed by the raw array bytes,
  64-byte aligned.  The creator sets the ready flag only after every byte
  is written; attachers spin briefly on it, so a half-written segment is
  never adopted.
* **Attachers verify content**: the candidate views are compared
  byte-for-byte against the privately loaded arrays before they are
  adopted.  A stale, foreign or corrupt segment therefore degrades to the
  private copy — never to silently wrong predictions.  (The registry
  digest in the key already binds name to content; the comparison makes
  the parity bar independent of that assumption.)
* Failure of any kind — no ``/dev/shm``, permissions, size mismatch, a
  platform without shared memory — degrades to the private arrays.
  Sharing is an optimisation, never a correctness dependency.

Lifecycle: the creating process owns the segment and unlinks it on
shutdown; attaching processes only close their mapping (their resource
tracker is told to leave the segment alone — the creator's tracker still
reclaims it if the creator dies uncleanly).  A SIGKILLed creator leaks the
segment until the host cleans ``/dev/shm``; survivors keep serving from
their existing mapping either way.
"""

from __future__ import annotations

import json
import struct
import time
from typing import Any, Optional

import numpy as np

from repro.ml.packed import PackedEnsemble

__all__ = ["SharedArena", "share_packed", "attach_shared_arena", "ARENA_FORMAT_VERSION"]

#: Bump to orphan every previously published segment (names include it).
ARENA_FORMAT_VERSION = 1

_MAGIC = b"RPARENA"
_HEADER = struct.Struct("<7sBBxxxxxQ")  # magic, version, ready, pad, meta length
_ALIGN = 64

#: Arena fields shared through the segment, in layout order.  The lazily
#: built traversal tables stay process-private (they are derived data).
_FIELDS = (
    "feature",
    "threshold",
    "children_left",
    "children_right",
    "value",
    "n_node_samples",
    "offsets",
)

#: How long an attacher waits for the creator's ready flag before giving up
#: and keeping its private copy.
_READY_WAIT_S = 2.0


def _segment_name(key: str) -> str:
    safe = "".join(c for c in key.lower() if c.isalnum())[:40]
    if not safe:
        raise ValueError(f"Arena key {key!r} has no usable characters.")
    return f"repro-arena-{ARENA_FORMAT_VERSION}-{safe}"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _untrack(shm: Any) -> None:
    """Stop this process's resource tracker from reaping the segment.

    Attachers must not destroy a segment they do not own: without this, the
    first attacher to *exit* would have its tracker unlink the segment out
    from under every other worker (bpo-38119).  The creator stays tracked,
    so an uncleanly dying creator is still reclaimed.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedArena:
    """Handle on one shared arena segment (owns the mapping lifecycle)."""

    def __init__(self, shm: Any, *, created: bool) -> None:
        self._shm = shm
        self.name = shm.name
        self.created = created
        self.nbytes = shm.size
        self._closed = False

    def close(self) -> None:
        """Unmap (and unlink, when this process created the segment).

        Idempotent and tolerant: live ndarray views keep the mapping pinned
        (``BufferError``), in which case the OS reclaims it at process exit.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            # In-flight predictions still hold views; the mapping outlives
            # the handle and falls with the process.
            self._closed = False
            return
        except OSError:
            pass
        if self.created:
            try:
                self._shm.unlink()
            except OSError:
                # Someone else already destroyed it; unlink() did not get to
                # unregister, so stop the tracker re-reporting the name.
                _untrack(self._shm)

    def stats(self) -> dict:
        return {"name": self.name, "created": self.created, "nbytes": self.nbytes}


def _plan_layout(packed: PackedEnsemble, key: str) -> tuple[bytes, list[dict], int, int]:
    """Header+meta bytes (ready unset), field table, data base, total size.

    Field offsets are **relative to the data region**; the data region
    starts at ``_align(header size + meta length)``, which both sides
    derive from the header alone — so the serialized table never has to
    know its own length.
    """
    fields = []
    offset = 0  # relative to the data region
    for name in _FIELDS:
        arr = np.ascontiguousarray(getattr(packed, name))
        offset = _align(offset)
        fields.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
            }
        )
        offset += arr.nbytes
    meta = json.dumps(
        {"key": key, "n_features_in": packed.n_features_in, "fields": fields}
    ).encode("utf-8")
    data_start = _align(_HEADER.size + len(meta))
    header = _HEADER.pack(_MAGIC, ARENA_FORMAT_VERSION, 0, len(meta))
    return header + meta, fields, data_start, data_start + offset


def _views(shm: Any, fields: list[dict], base: int) -> dict[str, np.ndarray]:
    out = {}
    for field in fields:
        arr = np.ndarray(
            tuple(field["shape"]),
            dtype=np.dtype(field["dtype"]),
            buffer=shm.buf,
            offset=base + field["offset"],
        )
        arr.flags.writeable = False
        out[field["name"]] = arr
    return out


def _ensemble_from_views(
    views: dict[str, np.ndarray], n_features_in: int
) -> PackedEnsemble:
    return PackedEnsemble(n_features_in=n_features_in, **views)


def _create(shm_mod: Any, name: str, packed: PackedEnsemble, key: str):
    prefix, fields, data_start, total = _plan_layout(packed, key)
    shm = shm_mod.SharedMemory(name=name, create=True, size=total)
    try:
        shm.buf[: len(prefix)] = prefix
        views = _views(shm, fields, data_start)
        for field_name, view in views.items():
            src = np.ascontiguousarray(getattr(packed, field_name))
            view.flags.writeable = True
            view[...] = src
            view.flags.writeable = False
        shm.buf[len(_MAGIC) + 1] = 1  # ready flag (byte 8 of the header)
    except Exception:
        shm.close()
        try:
            shm.unlink()
        except OSError:
            _untrack(shm)
        raise
    return _ensemble_from_views(views, packed.n_features_in), SharedArena(
        shm, created=True
    )


def _attach(shm_mod: Any, name: str, packed: PackedEnsemble, key: str):
    shm = shm_mod.SharedMemory(name=name)
    _untrack(shm)
    try:
        deadline = time.monotonic() + _READY_WAIT_S
        while True:
            header = bytes(shm.buf[: _HEADER.size])
            magic, version, ready, meta_len = _HEADER.unpack(header)
            if magic != _MAGIC or version != ARENA_FORMAT_VERSION:
                raise ValueError("foreign or stale arena segment")
            if ready:
                break
            if time.monotonic() >= deadline:
                raise ValueError("arena segment never became ready")
            time.sleep(0.01)
        meta = json.loads(bytes(shm.buf[_HEADER.size : _HEADER.size + meta_len]))
        if meta.get("key") != key or meta.get("n_features_in") != packed.n_features_in:
            raise ValueError("arena segment does not match the requested model")
        views = _views(shm, meta["fields"], _align(_HEADER.size + meta_len))
        if set(views) != set(_FIELDS):
            raise ValueError("arena segment field table is incomplete")
        # Parity is non-negotiable: adopt the mapping only if it is
        # byte-identical to the arrays we just loaded and verified.
        for field_name, view in views.items():
            ours = np.ascontiguousarray(getattr(packed, field_name))
            if view.dtype != ours.dtype or view.shape != ours.shape:
                raise ValueError(f"arena field {field_name!r} shape/dtype mismatch")
            # Bytewise, not value-wise: NaN leaf thresholds must compare
            # equal, and byte identity is the actual parity bar.
            if view.tobytes() != ours.tobytes():
                raise ValueError(f"arena field {field_name!r} content mismatch")
        return _ensemble_from_views(views, packed.n_features_in), SharedArena(
            shm, created=False
        )
    except Exception:
        try:
            shm.close()
        except (BufferError, OSError):
            pass
        raise


def share_packed(
    packed: PackedEnsemble, key: str
) -> Optional[tuple[PackedEnsemble, SharedArena]]:
    """Publish or adopt the host-wide shared copy of ``packed``.

    Returns ``(ensemble, handle)`` where ``ensemble``'s arrays are
    read-only views into the shared segment, or ``None`` when sharing is
    impossible (no shared-memory support, a mismatched segment, any OS
    refusal) — callers then simply keep the private arrays.
    """
    try:
        from multiprocessing import shared_memory as shm_mod
    except Exception:
        return None
    try:
        name = _segment_name(key)
    except ValueError:
        return None
    for attempt in range(2):
        try:
            return _create(shm_mod, name, packed, key)
        except FileExistsError:
            pass
        except Exception:
            return None
        try:
            return _attach(shm_mod, name, packed, key)
        except FileNotFoundError:
            # The creator vanished between our create and attach: one more
            # create attempt, then give up.
            continue
        except Exception:
            return None
    return None


def attach_shared_arena(model: Any, key: str) -> Optional[SharedArena]:
    """Swap ``model``'s packed arena for the host-shared copy keyed ``key``.

    Walks the hosted-model shapes exactly like
    :func:`~repro.serve.registry.warm_model` (advisor -> estimator ->
    ensemble), builds-or-adopts the shared segment, and points the
    ensemble's ``_packed`` cache at the view-backed arena.  Returns the
    segment handle (the caller owns closing it), or ``None`` when nothing
    could be shared — the model keeps its private arrays and serves
    identically.
    """
    seen: set[int] = set()
    node = model
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        build = getattr(node, "_packed_ensemble", None)
        if callable(build):
            packed = build()
            if packed is None:
                return None
            shared = share_packed(packed, key)
            if shared is None:
                return None
            ensemble, handle = shared
            node._packed = ensemble
            return handle
        node = getattr(node, "estimator", None) or getattr(node, "model_", None)
    return None
