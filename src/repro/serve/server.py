"""Online inference server: fitted models answering queries over a socket.

:class:`ServeServer` keeps fitted models hot in one process and answers
prediction/advisor queries over the shared frame protocol of
:mod:`repro.parallel.wire` (the PR 3 wire substrate).  Request bodies and
responses are JSON — the server never unpickles client bytes and the client
never unpickles server bytes, so neither side can execute the other's code;
floats survive the JSON round trip exactly (``repr`` round-trips float64),
which is what lets the served path meet the byte-parity bar.

Endpoints (1-byte opcode + JSON body):

``predict``
    ``{"model": name, "X": [[...], ...]}`` -> ``{"y": [...]}``.  Requests
    ride the per-model :class:`~repro.serve.batcher.MicroBatcher` (unless
    the server was built single-flight): concurrent queries coalesce into
    one packed traversal, and every answer is byte-identical to predicting
    that request alone on the local model.
``ask``
    ``{"model": name, "question": "stq"|"bq", "n_occupied": O,
    "n_virtual": V}`` -> the :class:`~repro.core.questions.QuestionAnswer`
    dict, via the hosted :class:`~repro.core.advisor.ResourceAdvisor`.
``health`` / ``stats``
    Liveness probe, and the server's counters (requests per endpoint,
    batcher coalescing stats, registry counters, uptime).

Failure contract (server side): a malformed request — undecodable JSON,
unknown opcode or model, wrong feature count, non-finite values, empty
``X`` — is answered with an error frame carrying a message; the connection
stays up and the server keeps serving.  Nothing a client sends can crash
the process.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Mapping, Optional

import numpy as np

from repro.parallel.wire import (
    DEFAULT_MAX_CONNECTIONS,
    DEFAULT_TIMEOUT,
    FrameService,
    ProtocolError,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import ModelRegistry, warm_model

__all__ = ["ServeServer", "SERVE_URL_SCHEME", "SERVE_PROTOCOL_VERSION"]

#: URL scheme of the serve service (``serve://host:port``).
SERVE_URL_SCHEME = "serve://"

SERVE_PROTOCOL_VERSION = 1

# Request opcodes.
OP_PREDICT = b"p"
OP_ASK = b"q"
OP_HEALTH = b"h"
OP_STATS = b"s"
OP_PING = b"?"

# Response statuses.
ST_OK = b"+"
ST_ERR = b"!"

PING_BANNER = f"repro-serve/{SERVE_PROTOCOL_VERSION}".encode("ascii")

_OP_NAMES = {
    OP_PREDICT: "predict",
    OP_ASK: "ask",
    OP_HEALTH: "health",
    OP_STATS: "stats",
    OP_PING: "ping",
}


class _RequestError(Exception):
    """A malformed or unanswerable request; becomes an error frame."""


class _HostedModel:
    """One served model: resolved predict path, advisor, optional batcher."""

    def __init__(self, name: str, model: Any, *, batcher: bool, max_batch_rows: int) -> None:
        self.name = name
        self.model = model
        # A ResourceAdvisor hosts its estimator; a bare estimator hosts
        # itself.  ``predict`` always resolves to the *local* single-call
        # entry point — the exact function a user would call directly,
        # which is what the parity bar is measured against.
        estimator = getattr(model, "estimator", None) if not hasattr(model, "predict") else model
        if estimator is None or not callable(getattr(estimator, "predict", None)):
            raise TypeError(
                f"Model {name!r} has neither .predict nor .estimator.predict."
            )
        self.estimator = estimator
        self.predict = estimator.predict
        self.advisor = model if callable(getattr(model, "answer", None)) else None
        n_features = getattr(estimator, "n_features_in_", None)
        if n_features is None:
            raise TypeError(
                f"Model {name!r} is not fitted (no n_features_in_); "
                "serve only hosts fitted models."
            )
        self.n_features = int(n_features)
        self.batcher: Optional[MicroBatcher] = (
            MicroBatcher(
                self.predict, n_features=self.n_features, max_batch_rows=max_batch_rows
            )
            if batcher
            else None
        )

    def close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()


class ServeServer(FrameService):
    """Serve fitted models to :class:`~repro.serve.client.ServeClient` users.

    Parameters
    ----------
    models:
        A single fitted model, or a mapping ``name -> model``.  A lone model
        is hosted as ``"default"``.  Each model must expose ``predict``
        (directly or via ``.estimator``); models exposing ``answer`` (the
        :class:`ResourceAdvisor` surface) additionally serve ``ask``.
    micro_batch:
        When true (default), predict requests coalesce through a per-model
        :class:`MicroBatcher`; when false every request runs its own model
        call (the single-flight baseline the benchmark compares against).
    registry:
        Optional :class:`ModelRegistry` whose counters are included in
        ``stats`` (the CLI passes the registry it warm-loaded from).
    timeout / max_connections:
        Wire-scaffolding robustness knobs (see
        :class:`~repro.parallel.wire.FrameService`): silent or half-framed
        clients are disconnected after ``timeout`` seconds — reclaiming
        their handler threads — and connections past ``max_connections``
        are shed instead of queueing threads unboundedly.
    """

    scheme = SERVE_URL_SCHEME

    def __init__(
        self,
        models: "Any | Mapping[str, Any]",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        micro_batch: bool = True,
        max_batch_rows: int = 1024,
        registry: Optional[ModelRegistry] = None,
        warm: bool = True,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        max_connections: Optional[int] = DEFAULT_MAX_CONNECTIONS,
    ) -> None:
        if not isinstance(models, Mapping):
            models = {"default": models}
        if not models:
            raise ValueError("ServeServer needs at least one model.")
        self.micro_batch = bool(micro_batch)
        self.registry = registry
        self.models: dict[str, _HostedModel] = {}
        # Several names may alias one model object (the CLI serves the
        # registry alias and "default" as the same model); they share one
        # hosted entry so coalescing is not split across names.
        hosted_by_id: dict[int, _HostedModel] = {}
        for name, model in models.items():
            hosted = hosted_by_id.get(id(model))
            if hosted is None:
                if warm:
                    warm_model(model)
                hosted = _HostedModel(
                    name, model, batcher=self.micro_batch, max_batch_rows=max_batch_rows
                )
                hosted_by_id[id(model)] = hosted
            self.models[name] = hosted
        self._counters = {name: 0 for name in _OP_NAMES.values()}
        self._counter_lock = threading.Lock()
        self._error_count = 0
        self._started_at = time.monotonic()
        try:
            super().__init__(
                host=host, port=port, timeout=timeout, max_connections=max_connections
            )
        except Exception:
            # A failed bind (port in use, bad interface) must not leak the
            # already-started batcher worker threads.
            for hosted in self.models.values():
                hosted.close()
            raise

    def __enter__(self) -> "ServeServer":
        self.start()
        return self

    def shutdown(self) -> None:
        super().shutdown()
        for hosted in self.models.values():
            hosted.close()

    # -------------------------------------------------------------- dispatch

    def _handle_frame(self, request: bytes) -> bytes:
        try:
            body = self._dispatch(request)
            return ST_OK + body
        except (_RequestError, ProtocolError) as exc:
            with self._counter_lock:
                self._error_count += 1
            return ST_ERR + str(exc).encode("utf-8", "replace")
        except Exception:
            with self._counter_lock:
                self._error_count += 1
            return self._internal_error_frame()

    def _internal_error_frame(self) -> bytes:
        return ST_ERR + b"internal error"

    def _dispatch(self, request: bytes) -> bytes:
        op = request[:1]
        name = _OP_NAMES.get(op)
        if name is None:
            raise _RequestError(f"unknown opcode {op!r}")
        with self._counter_lock:
            self._counters[name] += 1
        if op == OP_PING:
            return PING_BANNER
        if op == OP_HEALTH:
            return self._json(self._health())
        if op == OP_STATS:
            return self._json(self.stats())
        fields = self._parse_body(request[1:])
        if op == OP_PREDICT:
            return self._json(self._predict(fields))
        return self._json(self._ask(fields))

    @staticmethod
    def _json(obj: Any) -> bytes:
        return json.dumps(obj).encode("utf-8")

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        try:
            fields = json.loads(body)
        except ValueError:
            raise _RequestError("request body is not valid JSON")
        if not isinstance(fields, dict):
            raise _RequestError("request body must be a JSON object")
        return fields

    def _hosted(self, fields: dict) -> tuple[str, _HostedModel]:
        """Resolve the requested model; returns the *requested* name too
        (aliases share one hosted entry, but responses must echo the name
        the client asked for)."""
        name = fields.get("model", "default")
        hosted = self.models.get(name)
        if hosted is None:
            raise _RequestError(
                f"unknown model {name!r} (serving: {sorted(self.models)})"
            )
        return name, hosted

    # ------------------------------------------------------------- endpoints

    def _predict(self, fields: dict) -> dict:
        name, hosted = self._hosted(fields)
        rows = fields.get("X")
        if not isinstance(rows, list):
            raise _RequestError("predict needs X: a list of feature rows")
        try:
            X = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError):
            raise _RequestError("X must be numeric feature rows")
        if X.ndim == 1 and X.size == 0:
            raise _RequestError("Empty input array.")
        if X.ndim != 2:
            raise _RequestError(f"X must be 2-D (n_rows, n_features), got shape {X.shape}")
        try:
            if hosted.batcher is not None:
                y = hosted.batcher.submit(X)
            else:
                self._validate(X, hosted.n_features)
                y = hosted.predict(X)
        except ValueError as exc:
            raise _RequestError(str(exc))
        return {"model": name, "n_rows": int(X.shape[0]), "y": y.tolist()}

    @staticmethod
    def _validate(X: np.ndarray, n_features: int) -> None:
        # Mirrors MicroBatcher.submit's gate so single-flight mode rejects
        # exactly what batched mode rejects (and with the check_array
        # wording the local path uses).
        if X.shape[1] != n_features:
            raise ValueError(f"Expected shape (n, {n_features}), got {X.shape}.")
        if X.shape[0] == 0:
            raise ValueError("Empty input array.")
        if not np.all(np.isfinite(X)):
            raise ValueError("Input contains NaN or infinity.")

    def _ask(self, fields: dict) -> dict:
        name, hosted = self._hosted(fields)
        if hosted.advisor is None:
            raise _RequestError(f"model {name!r} does not host an advisor")
        question = fields.get("question")
        if question not in ("stq", "bq"):
            raise _RequestError(f"question must be 'stq' or 'bq', got {question!r}")
        try:
            n_occupied = int(fields["n_occupied"])
            n_virtual = int(fields["n_virtual"])
        except (KeyError, TypeError, ValueError):
            raise _RequestError("ask needs integer n_occupied and n_virtual")
        try:
            answer = hosted.advisor.answer(question, n_occupied, n_virtual)
        except ValueError as exc:
            raise _RequestError(str(exc))
        return {"model": name, "answer": answer.as_dict()}

    def _health(self) -> dict:
        return {
            "status": "ok",
            "protocol": SERVE_PROTOCOL_VERSION,
            "models": sorted(self.models),
            "micro_batch": self.micro_batch,
            "uptime_s": time.monotonic() - self._started_at,
            "pid": os.getpid(),
        }

    def stats(self) -> dict:
        """Server counters; also what the ``stats`` endpoint returns."""
        models = {}
        for name, hosted in self.models.items():
            models[name] = {
                "n_features": hosted.n_features,
                "advisor": hosted.advisor is not None,
                "batcher": hosted.batcher.stats() if hosted.batcher else None,
            }
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "micro_batch": self.micro_batch,
            "requests": dict(self._counters),
            "errors": self._error_count,
            "connections": {
                "open": self.open_connections,
                "shed": self.connections_shed,
            },
            "models": models,
            "registry": self.registry.stats() if self.registry else None,
        }
