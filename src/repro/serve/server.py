"""Online inference server: fitted models answering queries over a socket.

:class:`ServeServer` keeps fitted models hot in one process and answers
prediction/advisor queries over the shared frame protocol of
:mod:`repro.parallel.wire` (the PR 3 wire substrate).  Request bodies and
responses are JSON — the server never unpickles client bytes and the client
never unpickles server bytes, so neither side can execute the other's code;
floats survive the JSON round trip exactly (``repr`` round-trips float64),
which is what lets the served path meet the byte-parity bar.

Endpoints (1-byte opcode + JSON body):

``predict``
    ``{"model": name, "X": [[...], ...]}`` -> ``{"y": [...]}``.  Requests
    ride the per-model :class:`~repro.serve.batcher.MicroBatcher` (unless
    the server was built single-flight): concurrent queries coalesce into
    one packed traversal, and every answer is byte-identical to predicting
    that request alone on the local model.
``ask``
    ``{"model": name, "question": "stq"|"bq", "n_occupied": O,
    "n_virtual": V}`` -> the :class:`~repro.core.questions.QuestionAnswer`
    dict, via the hosted :class:`~repro.core.advisor.ResourceAdvisor`.
``health`` / ``stats``
    Liveness probe, and the server's counters (requests per endpoint,
    batcher coalescing stats, registry counters, uptime).

Fleet semantics (PR 8):

* **Multi-model routing** — when the server holds a registry, a request's
  ``model`` alias that is not already resident is resolved and warm-loaded
  on first use; residents are LRU-capped at ``max_models`` (evicted models
  reload on their next request, digest re-verified by the registry).
* **Shared packed arenas** — registry-loaded models swap their packed
  arena for one host-wide ``multiprocessing.shared_memory`` segment keyed
  by the artifact digest (:mod:`repro.serve.arena`), so N serve workers on
  a host map a single model copy.  Sharing is verified bytewise and falls
  back to private arrays on any failure — parity never depends on it.
* **Admission control** — ``max_inflight`` bounds concurrently processing
  predict/ask requests.  Past the bound, requests are *shed* with a
  distinct, retryable ``overloaded: ...`` error instead of queueing behind
  the micro-batcher unboundedly — the request-layer mirror of the wire
  layer's connection cap, whose shed connections now also receive an
  ``overloaded`` frame instead of a bare EOF.

Failure contract (server side): a malformed request — undecodable JSON,
unknown opcode or model, wrong feature count, non-finite values, empty
``X`` — is answered with an error frame carrying a message; the connection
stays up and the server keeps serving.  Nothing a client sends can crash
the process.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Mapping, Optional

import numpy as np

from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.parallel.wire import (
    DEFAULT_MAX_CONNECTIONS,
    DEFAULT_TIMEOUT,
    FrameService,
    ProtocolError,
)
from repro.serve.arena import SharedArena, attach_shared_arena
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import ModelRegistry, warm_model

__all__ = ["ServeServer", "SERVE_URL_SCHEME", "SERVE_PROTOCOL_VERSION"]

#: URL scheme of the serve service (``serve://host:port``).
SERVE_URL_SCHEME = "serve://"

SERVE_PROTOCOL_VERSION = 1

# Request opcodes.
OP_PREDICT = b"p"
OP_ASK = b"q"
OP_HEALTH = b"h"
OP_STATS = b"s"
OP_PING = b"?"

# Response statuses.
ST_OK = b"+"
ST_ERR = b"!"

PING_BANNER = f"repro-serve/{SERVE_PROTOCOL_VERSION}".encode("ascii")

_OP_NAMES = {
    OP_PREDICT: "predict",
    OP_ASK: "ask",
    OP_HEALTH: "health",
    OP_STATS: "stats",
    OP_PING: "ping",
}


class _RequestError(Exception):
    """A malformed or unanswerable request; becomes an error frame."""


class _HostedModel:
    """One served model: resolved predict path, advisor, optional batcher."""

    def __init__(
        self,
        name: str,
        model: Any,
        *,
        batcher: bool,
        max_batch_rows: int,
        digest: Optional[str] = None,
        arena: Optional[SharedArena] = None,
        source: str = "static",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.name = name
        self.model = model
        self.digest = digest
        self.arena = arena
        self.source = source
        # A ResourceAdvisor hosts its estimator; a bare estimator hosts
        # itself.  ``predict`` always resolves to the *local* single-call
        # entry point — the exact function a user would call directly,
        # which is what the parity bar is measured against.
        estimator = getattr(model, "estimator", None) if not hasattr(model, "predict") else model
        if estimator is None or not callable(getattr(estimator, "predict", None)):
            raise TypeError(
                f"Model {name!r} has neither .predict nor .estimator.predict."
            )
        self.estimator = estimator
        self.predict = estimator.predict
        self.advisor = model if callable(getattr(model, "answer", None)) else None
        n_features = getattr(estimator, "n_features_in_", None)
        if n_features is None:
            raise TypeError(
                f"Model {name!r} is not fitted (no n_features_in_); "
                "serve only hosts fitted models."
            )
        self.n_features = int(n_features)
        self.batcher: Optional[MicroBatcher] = (
            MicroBatcher(
                self.predict,
                n_features=self.n_features,
                max_batch_rows=max_batch_rows,
                metrics=metrics,
                model=name,
            )
            if batcher
            else None
        )

    def close(self) -> None:
        if self.batcher is not None:
            self.batcher.close()
        if self.arena is not None:
            self.arena.close()


class ServeServer(FrameService):
    """Serve fitted models to :class:`~repro.serve.client.ServeClient` users.

    Parameters
    ----------
    models:
        A single fitted model, or a mapping ``name -> model``.  A lone model
        is hosted as ``"default"``.  Each model must expose ``predict``
        (directly or via ``.estimator``); models exposing ``answer`` (the
        :class:`ResourceAdvisor` surface) additionally serve ``ask``.  With
        a ``registry``, ``models`` may be empty (``{}``): every model is
        then routed lazily by alias.
    micro_batch:
        When true (default), predict requests coalesce through a per-model
        :class:`MicroBatcher`; when false every request runs its own model
        call (the single-flight baseline the benchmark compares against).
    registry:
        Optional :class:`ModelRegistry`.  Besides contributing counters to
        ``stats``, it turns the server multi-model: a request alias not in
        ``models`` is resolved and warm-loaded on first use, LRU-capped at
        ``max_models``.
    max_models:
        Cap on *registry-routed* resident models (statically passed models
        are pinned and never evicted).  ``None`` means unlimited.  Evicted
        models simply reload on their next request, digest re-verified.
    max_inflight:
        Bound on concurrently processing predict/ask requests.  Past it,
        requests fail fast with a retryable ``overloaded: ...`` error
        instead of queueing unboundedly.  ``None`` means unbounded.
    max_pending:
        Bound on a model batcher's *pending depth* — rows submitted but
        not yet answered, the real queue-pressure signal.  A predict
        arriving while its model's backlog is at the cap is shed with the
        same retryable ``overloaded: ...`` flavour.  Complements
        ``max_inflight``: in-flight counts requests being processed,
        pending counts work queued behind the batcher.  ``None`` (default)
        means unbounded; only meaningful with ``micro_batch``.
    shared_arenas:
        Share packed arenas host-wide through ``multiprocessing.shared_memory``
        keyed by artifact digest.  ``None`` (default) enables sharing
        exactly when a registry is present; sharing failures silently fall
        back to private arrays.
    model_digests:
        Registry digests for *statically* passed models (``name ->
        digest``), letting their arenas join the host-shared segments too.
        The CLI passes the digest it warm-loaded or published.
    timeout / max_connections:
        Wire-scaffolding robustness knobs (see
        :class:`~repro.parallel.wire.FrameService`): silent or half-framed
        clients are disconnected after ``timeout`` seconds — reclaiming
        their handler threads — and connections past ``max_connections``
        are shed instead of queueing threads unboundedly (shed connections
        receive an ``overloaded`` frame before the close).
    """

    scheme = SERVE_URL_SCHEME

    def __init__(
        self,
        models: "Any | Mapping[str, Any]",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        micro_batch: bool = True,
        max_batch_rows: int = 1024,
        registry: Optional[ModelRegistry] = None,
        warm: bool = True,
        max_models: Optional[int] = None,
        max_inflight: Optional[int] = None,
        max_pending: Optional[int] = None,
        shared_arenas: Optional[bool] = None,
        model_digests: Optional[Mapping[str, str]] = None,
        slow_ms: Optional[float] = None,
        timeout: Optional[float] = DEFAULT_TIMEOUT,
        max_connections: Optional[int] = DEFAULT_MAX_CONNECTIONS,
    ) -> None:
        if not isinstance(models, Mapping):
            models = {"default": models}
        if not models and registry is None:
            raise ValueError(
                "ServeServer needs at least one model (or a registry to "
                "route aliases through)."
            )
        # The metrics registry must exist before models are hosted: each
        # model's micro-batcher registers its instruments on it (labelled
        # by model name) so one telemetry snapshot covers the whole server.
        self.metrics = MetricsRegistry()
        self.micro_batch = bool(micro_batch)
        self.registry = registry
        self.max_models = int(max_models) if max_models and max_models > 0 else None
        self.max_inflight = (
            int(max_inflight) if max_inflight and max_inflight > 0 else None
        )
        self.max_pending = (
            int(max_pending) if max_pending and max_pending > 0 else None
        )
        self.shared_arenas = (
            bool(registry) if shared_arenas is None else bool(shared_arenas)
        )
        self._max_batch_rows = int(max_batch_rows)
        self.models: dict[str, _HostedModel] = {}
        # Registry-routed residents, least recently used first.  Guarded by
        # _models_lock; _load_lock serializes the loads themselves so one
        # alias is never loaded twice concurrently.
        self._dynamic: "OrderedDict[str, _HostedModel]" = OrderedDict()
        self._models_lock = threading.Lock()
        self._load_lock = threading.Lock()
        self._c_models_loaded = self.metrics.counter("serve.models_loaded")
        self._c_models_evicted = self.metrics.counter("serve.models_evicted")
        # Several names may alias one model object (the CLI serves the
        # registry alias and "default" as the same model); they share one
        # hosted entry so coalescing is not split across names.
        digests = dict(model_digests or {})
        hosted_by_id: dict[int, _HostedModel] = {}
        for name, model in models.items():
            hosted = hosted_by_id.get(id(model))
            if hosted is None:
                digest = digests.get(name)
                arena = (
                    attach_shared_arena(model, digest)
                    if self.shared_arenas and digest
                    else None
                )
                if warm:
                    # After the arena swap, so traversal tables build on
                    # the shared views.
                    warm_model(model)
                hosted = _HostedModel(
                    name,
                    model,
                    batcher=self.micro_batch,
                    max_batch_rows=max_batch_rows,
                    digest=digest,
                    arena=arena,
                    source="static",
                    metrics=self.metrics,
                )
                hosted_by_id[id(model)] = hosted
            self.models[name] = hosted
        # Request counters on the typed registry; legacy stats() keys are
        # views over these instruments.
        self._op_counters = {
            name: self.metrics.counter("serve.requests", op=name)
            for name in _OP_NAMES.values()
        }
        self._counter_lock = threading.Lock()
        self._c_errors = self.metrics.counter("serve.errors")
        self._c_requests_shed = self.metrics.counter("serve.requests_shed")
        self._g_inflight = self.metrics.gauge("serve.inflight")
        self._inflight = 0
        # --slow-ms: requests whose frame span exceeds the threshold log
        # one structured line — rate-limited so a pathological workload
        # cannot turn the log into the bottleneck.
        self.slow_ms = float(slow_ms) if slow_ms and slow_ms > 0 else None
        self._slow_lock = threading.Lock()
        self._slow_last = 0.0
        self._slow_min_interval_s = 1.0
        self._c_slow_logged = self.metrics.counter("serve.slow_logged")
        self._c_slow_suppressed = self.metrics.counter("serve.slow_suppressed")
        self._started_at = time.monotonic()
        try:
            super().__init__(
                host=host, port=port, timeout=timeout, max_connections=max_connections
            )
        except Exception:
            # A failed bind (port in use, bad interface) must not leak the
            # already-started batcher worker threads.
            for hosted in self._all_hosted():
                hosted.close()
            raise

    def __enter__(self) -> "ServeServer":
        self.start()
        return self

    def shutdown(self) -> None:
        super().shutdown()
        for hosted in self._all_hosted():
            hosted.close()

    def _all_hosted(self) -> list[_HostedModel]:
        """Every distinct hosted entry — static (deduped) and dynamic."""
        out: dict[int, _HostedModel] = {}
        for hosted in self.models.values():
            out[id(hosted)] = hosted
        with self._models_lock:
            dynamic = list(self._dynamic.values())
        for hosted in dynamic:
            out[id(hosted)] = hosted
        return list(out.values())

    def model_names(self) -> list[str]:
        """Names currently resident (static + registry-routed), sorted."""
        with self._models_lock:
            dynamic = list(self._dynamic)
        return sorted(set(self.models) | set(dynamic))

    # -------------------------------------------------------------- dispatch

    def _handle_frame(self, request: bytes) -> bytes:
        try:
            body = self._dispatch(request)
            return ST_OK + body
        except (_RequestError, ProtocolError) as exc:
            self._c_errors.inc()
            return ST_ERR + str(exc).encode("utf-8", "replace")
        except Exception:
            self._c_errors.inc()
            return self._internal_error_frame()

    def _internal_error_frame(self) -> bytes:
        return ST_ERR + b"internal error"

    def _force_frame_spans(self) -> bool:
        # --slow-ms needs per-frame spans to measure against even when
        # tracing is globally off (spans then stay in the ring; nothing
        # hits a sink and no context rides the wire).
        return self.slow_ms is not None

    def _on_frame_span(self, frame_span: Any) -> None:
        """Slow-request log: one structured line per offending request.

        Rate-limited to one line per ``_slow_min_interval_s`` so a
        pathological workload cannot turn stderr into the bottleneck;
        suppressed lines are still counted (``serve.slow_suppressed``).
        """
        if self.slow_ms is None or frame_span.duration_s is None:
            return
        duration_ms = frame_span.duration_s * 1000.0
        if duration_ms < self.slow_ms:
            return
        now = time.monotonic()
        with self._slow_lock:
            if now - self._slow_last < self._slow_min_interval_s:
                self._c_slow_suppressed.inc()
                return
            self._slow_last = now
        self._c_slow_logged.inc()
        line = json.dumps(
            {
                "event": "slow_request",
                "threshold_ms": self.slow_ms,
                "duration_ms": round(duration_ms, 3),
                "trace_id": frame_span.trace_id,
                "span_id": frame_span.span_id,
                "op": frame_span.tags.get("op"),
                "hops_ms": {
                    key: round(seconds * 1000.0, 3)
                    for key, seconds in sorted(frame_span.hops.items())
                },
            },
            sort_keys=True,
        )
        print(line, file=sys.stderr, flush=True)

    def _shed_frame(self) -> bytes:
        # Wire-level sheds (connection cap) now speak the same retryable
        # refusal the request-level budget does, instead of a bare EOF.
        return ST_ERR + b"overloaded: connection limit reached (retryable)"

    def _op_label(self, payload: bytes) -> str:
        return _OP_NAMES.get(payload[:1]) or repr(payload[:1])

    def _dispatch(self, request: bytes) -> bytes:
        op = request[:1]
        name = _OP_NAMES.get(op)
        if name is None:
            raise _RequestError(f"unknown opcode {op!r}")
        self._op_counters[name].inc()
        if op == OP_PING:
            return PING_BANNER
        if op == OP_HEALTH:
            return self._json(self._health())
        if op == OP_STATS:
            return self._json(self.stats())
        fields = self._parse_body(request[1:])
        # Admission control: model-work endpoints only — health/stats/ping
        # must stay answerable from an overloaded server.
        if not self._admit():
            raise _RequestError(
                "overloaded: server at max in-flight requests (retryable; "
                "try another replica)"
            )
        try:
            if op == OP_PREDICT:
                return self._json(self._predict(fields))
            return self._json(self._ask(fields))
        finally:
            with self._counter_lock:
                self._inflight -= 1
                self._g_inflight.set(self._inflight)

    def _admit(self) -> bool:
        with self._counter_lock:
            if self.max_inflight is not None and self._inflight >= self.max_inflight:
                self._c_requests_shed.inc()
                return False
            self._inflight += 1
            self._g_inflight.set(self._inflight)
            return True

    @staticmethod
    def _json(obj: Any) -> bytes:
        return json.dumps(obj).encode("utf-8")

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        try:
            fields = json.loads(body)
        except ValueError:
            raise _RequestError("request body is not valid JSON")
        if not isinstance(fields, dict):
            raise _RequestError("request body must be a JSON object")
        return fields

    def _hosted(self, fields: dict) -> tuple[str, _HostedModel]:
        """Resolve the requested model; returns the *requested* name too
        (aliases share one hosted entry, but responses must echo the name
        the client asked for).

        Static models are pinned; anything else routes through the
        registry — resident aliases are LRU-touched, absent ones are
        loaded on the spot (and may evict the coldest resident).
        """
        name = fields.get("model", "default")
        if not isinstance(name, str):
            raise _RequestError("model must be a string alias")
        hosted = self.models.get(name)
        if hosted is not None:
            return name, hosted
        with self._models_lock:
            hosted = self._dynamic.get(name)
            if hosted is not None:
                self._dynamic.move_to_end(name)
                return name, hosted
        if self.registry is None:
            raise _RequestError(
                f"unknown model {name!r} (serving: {self.model_names()})"
            )
        return name, self._load_dynamic(name)

    def _load_dynamic(self, name: str) -> _HostedModel:
        """Warm-load ``name`` from the registry into the LRU residents."""
        with self._load_lock:
            # Double-check after winning the load lock: a concurrent
            # request may have loaded this alias while we waited.
            with self._models_lock:
                hosted = self._dynamic.get(name)
                if hosted is not None:
                    self._dynamic.move_to_end(name)
                    return hosted
            t_load = time.perf_counter()
            with obs_trace.span("serve.registry_load", tags={"model": name}):
                loaded = self.registry.load_with_digest(name, warm=False)
                if loaded is None:
                    raise _RequestError(
                        f"unknown model {name!r} (serving: {self.model_names()}; "
                        f"registry aliases: {sorted(self.registry.aliases())})"
                    )
                digest, model = loaded
                arena = (
                    attach_shared_arena(model, digest) if self.shared_arenas else None
                )
                warm_model(model)
            # Attribute the load to the *request's* hop breakdown (the
            # frame span is current again outside the child span).
            obs_trace.annotate("registry_load", time.perf_counter() - t_load)
            try:
                hosted = _HostedModel(
                    name,
                    model,
                    batcher=self.micro_batch,
                    max_batch_rows=self._max_batch_rows,
                    digest=digest,
                    arena=arena,
                    source="registry",
                    metrics=self.metrics,
                )
            except TypeError as exc:
                if arena is not None:
                    arena.close()
                raise _RequestError(f"model {name!r} is not servable: {exc}")
            evicted: list[_HostedModel] = []
            with self._models_lock:
                self._dynamic[name] = hosted
                self._dynamic.move_to_end(name)
                while (
                    self.max_models is not None
                    and len(self._dynamic) > self.max_models
                ):
                    _, cold = self._dynamic.popitem(last=False)
                    evicted.append(cold)
                self._c_models_loaded.inc()
                self._c_models_evicted.inc(len(evicted))
        # Close evicted models outside every lock: batcher close drains the
        # queue (riders already accepted still get answers) and may block.
        for cold in evicted:
            cold.close()
        return hosted

    # ------------------------------------------------------------- endpoints

    def _predict(self, fields: dict) -> dict:
        name, hosted = self._hosted(fields)
        if (
            self.max_pending is not None
            and hosted.batcher is not None
            and hosted.batcher.pending_depth() >= self.max_pending
        ):
            # Queue pressure, not processing pressure: the batcher already
            # has max_pending rows waiting, so shed with the same
            # retryable flavour the in-flight budget uses.
            self._c_requests_shed.inc()
            raise _RequestError(
                f"overloaded: model {name!r} has {self.max_pending} rows "
                f"pending (retryable; try another replica)"
            )
        rows = fields.get("X")
        if not isinstance(rows, list):
            raise _RequestError("predict needs X: a list of feature rows")
        try:
            X = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError):
            raise _RequestError("X must be numeric feature rows")
        if X.ndim == 1 and X.size == 0:
            raise _RequestError("Empty input array.")
        if X.ndim != 2:
            raise _RequestError(f"X must be 2-D (n_rows, n_features), got shape {X.shape}")
        try:
            if hosted.batcher is not None:
                y = hosted.batcher.submit(X)
            else:
                self._validate(X, hosted.n_features)
                t_predict = time.perf_counter()
                y = hosted.predict(X)
                obs_trace.annotate("traverse", time.perf_counter() - t_predict)
        except ValueError as exc:
            raise _RequestError(str(exc))
        except RuntimeError:
            # The model was LRU-evicted between routing and submit; its
            # batcher is closed.  The next attempt reloads it.
            raise _RequestError(
                f"model {name!r} was evicted mid-request (retryable)"
            )
        return {"model": name, "n_rows": int(X.shape[0]), "y": y.tolist()}

    @staticmethod
    def _validate(X: np.ndarray, n_features: int) -> None:
        # Mirrors MicroBatcher.submit's gate so single-flight mode rejects
        # exactly what batched mode rejects (and with the check_array
        # wording the local path uses).
        if X.shape[1] != n_features:
            raise ValueError(f"Expected shape (n, {n_features}), got {X.shape}.")
        if X.shape[0] == 0:
            raise ValueError("Empty input array.")
        if not np.all(np.isfinite(X)):
            raise ValueError("Input contains NaN or infinity.")

    def _ask(self, fields: dict) -> dict:
        name, hosted = self._hosted(fields)
        if hosted.advisor is None:
            raise _RequestError(f"model {name!r} does not host an advisor")
        question = fields.get("question")
        if question not in ("stq", "bq"):
            raise _RequestError(f"question must be 'stq' or 'bq', got {question!r}")
        try:
            n_occupied = int(fields["n_occupied"])
            n_virtual = int(fields["n_virtual"])
        except (KeyError, TypeError, ValueError):
            raise _RequestError("ask needs integer n_occupied and n_virtual")
        try:
            answer = hosted.advisor.answer(question, n_occupied, n_virtual)
        except ValueError as exc:
            raise _RequestError(str(exc))
        return {"model": name, "answer": answer.as_dict()}

    def _health(self) -> dict:
        return {
            "status": "ok",
            "protocol": SERVE_PROTOCOL_VERSION,
            "models": self.model_names(),
            "micro_batch": self.micro_batch,
            "routed": self.registry is not None,
            "uptime_s": time.monotonic() - self._started_at,
            "pid": os.getpid(),
        }

    def stats(self) -> dict:
        """Server counters; also what the ``stats`` endpoint returns.

        Since PR 10 this dict is a *view* over the typed metrics registry
        (the same instruments the telemetry opcode snapshots) — shape and
        meaning unchanged.
        """
        with self._models_lock:
            resident = list(self._dynamic.items())
        loaded = self._c_models_loaded.value
        evicted = self._c_models_evicted.value
        models = {}
        arenas = {"shared": self.shared_arenas, "segments": 0, "nbytes": 0}
        counted: set[int] = set()
        for name, hosted in list(self.models.items()) + resident:
            models[name] = {
                "n_features": hosted.n_features,
                "advisor": hosted.advisor is not None,
                "source": hosted.source,
                "digest": hosted.digest,
                "arena": hosted.arena.stats() if hosted.arena else None,
                "batcher": hosted.batcher.stats() if hosted.batcher else None,
            }
            # Aliases share hosted entries; count each segment once.
            if hosted.arena is not None and id(hosted) not in counted:
                counted.add(id(hosted))
                arenas["segments"] += 1
                arenas["nbytes"] += hosted.arena.nbytes
        with self._counter_lock:
            inflight = self._inflight
        shed = self._c_requests_shed.value
        return {
            "uptime_s": time.monotonic() - self._started_at,
            "micro_batch": self.micro_batch,
            "requests": {
                name: counter.value for name, counter in self._op_counters.items()
            },
            "errors": self._c_errors.value,
            "connections": {
                "open": self.open_connections,
                "shed": self.connections_shed,
            },
            "admission": {
                "max_inflight": self.max_inflight,
                "max_pending": self.max_pending,
                "inflight": inflight,
                "requests_shed": shed,
            },
            "routing": {
                "max_models": self.max_models,
                "static": sorted(self.models),
                "resident": [name for name, _ in resident],
                "models_loaded": loaded,
                "models_evicted": evicted,
            },
            "arenas": arenas,
            "models": models,
            "registry": self.registry.stats() if self.registry else None,
        }
