"""Micro-batching for the online prediction path.

The packed engine's cost profile (PR 4) is dominated by per-*call* work —
the Python-level accumulation loop over the ensemble's trees plus dispatch
overhead — while the per-*sample* cost inside a call is nearly free: a
GB-750×depth-10 traversal of 64 rows costs barely more than one row.  An
online server answering one request per predict call therefore wastes
almost all of its capacity.  :class:`MicroBatcher` recovers it: concurrent
predict requests queue up, a single worker thread drains whatever is queued
*right now* into one stacked matrix, runs **one** packed traversal, and
slices the result back to the callers.

Batching is adaptive with zero added latency: an idle server predicts a
lone request immediately (the drain finds nothing else), while under load
the batch grows by itself — every request that arrives during traversal
``k`` rides traversal ``k + 1``.  No timer, no artificial delay tick.

The hard parity bar: a micro-batched prediction is **byte-identical** to
predicting that request alone.  This holds because every prediction path
behind it is row-independent — packed traversal routes each sample by its
own features, and the accumulation (``acc += scale * slab[t]``) applies the
same float-op sequence to each sample's lane regardless of which other rows
share the batch (pinned by ``tests/serve/test_batcher.py``).

Failure containment: requests are shape/finiteness-validated *before* they
enter the queue, so one malformed request fails alone with a clean
``ValueError`` instead of poisoning a whole batch; if the model itself
raises mid-batch, every rider of that batch receives *its own* chained copy
of the error (concurrent re-raises of one shared instance would clobber
each other's ``__traceback__``), the batch still counts into the volume
statistics, and the worker keeps serving.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from typing import Any, Callable, Optional

import numpy as np

from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry

__all__ = ["MicroBatcher"]

_CLOSE = object()  # queue sentinel: drain and exit the worker loop


class _Pending:
    """One queued request: its rows, and a slot the worker fills.

    The worker stamps ``t_start``/``t_done`` (batch pickup and batch
    completion) so the *submitter* thread — the one holding the request's
    trace span — can attribute queue wait and traversal time to the right
    hops without any cross-thread context propagation.
    """

    __slots__ = ("X", "result", "error", "done", "t_enqueue", "t_start", "t_done")

    def __init__(self, X: np.ndarray) -> None:
        self.X = X
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.done = threading.Event()
        self.t_enqueue = 0.0
        self.t_start = 0.0
        self.t_done = 0.0


class MicroBatcher:
    """Coalesce concurrent predict calls into one batched model call.

    Parameters
    ----------
    predict_fn:
        ``(n, n_features) float64 -> (n,) float64``; must be row-independent
        (every repro prediction path is — see the module docstring).
    n_features:
        Width requests are validated against before queueing.
    max_batch_rows:
        Cap on rows per model call.  A drain stops adding requests once the
        cap is reached; an oversized single request still runs alone (it is
        one caller's batch, not a coalition).
    """

    def __init__(
        self,
        predict_fn: Callable[[np.ndarray], np.ndarray],
        *,
        n_features: int,
        max_batch_rows: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        model: str = "",
    ) -> None:
        if max_batch_rows < 1:
            raise ValueError("max_batch_rows must be >= 1.")
        self._predict = predict_fn
        self.n_features = int(n_features)
        self.max_batch_rows = int(max_batch_rows)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        # Guards the closed-flag/enqueue pair: once _CLOSE is enqueued no
        # request can slip in behind it (FIFO + single consumer), so the
        # worker's exit can never strand a submitter on done.wait().
        self._close_lock = threading.Lock()
        # Guards compound counter updates so stats() reads one consistent
        # batch's worth, exactly as before the typed-registry migration.
        self._stats_lock = threading.Lock()
        # PR 10: counters live on a typed metrics registry — the server
        # passes its own (labelled by model) so the telemetry opcode sees
        # them; a standalone batcher gets a private one.  stats() and the
        # legacy attribute names below are views over these instruments.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        labels = {"model": model} if model else {}
        self._c_requests = self.metrics.counter("batch.requests", **labels)
        self._c_rows = self.metrics.counter("batch.rows", **labels)
        self._c_batches = self.metrics.counter("batch.batches", **labels)
        self._c_errors = self.metrics.counter("batch.errors", **labels)
        self._g_pending = self.metrics.gauge("batch.pending", **labels)
        self._g_batched_max = self.metrics.gauge("batch.batched_requests_max", **labels)
        self._h_queue_wait = self.metrics.histogram(
            "batch.queue_wait_seconds", **labels
        )
        self._h_traverse = self.metrics.histogram("batch.traverse_seconds", **labels)
        self._closed = False
        self._worker = threading.Thread(
            target=self._serve, name="micro-batcher", daemon=True
        )
        self._worker.start()

    # Legacy counter attributes, now read-only views over the registry.

    @property
    def requests(self) -> int:
        return self._c_requests.value

    @property
    def rows(self) -> int:
        return self._c_rows.value

    @property
    def batches(self) -> int:
        return self._c_batches.value

    @property
    def errors(self) -> int:
        return self._c_errors.value

    @property
    def pending(self) -> int:
        return int(self._g_pending.value)

    @property
    def batched_requests_max(self) -> int:
        return int(self._g_batched_max.value)

    # ------------------------------------------------------------------ client

    def submit(self, X: np.ndarray) -> np.ndarray:
        """Predict rows of ``X``, riding whatever batch forms; blocking.

        Raises ``ValueError`` for malformed input (validated before
        queueing, so bad requests never poison a batch) and re-raises
        whatever the model raised for the batch this request rode.
        """
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError(
                f"Expected shape (n, {self.n_features}), got {X.shape}."
            )
        if X.shape[0] == 0:
            raise ValueError("Empty input array.")
        if not np.all(np.isfinite(X)):
            raise ValueError("Input contains NaN or infinity.")
        pending = _Pending(X)
        with self._close_lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed.")
            with self._stats_lock:
                self._g_pending.inc()
            pending.t_enqueue = time.perf_counter()
            self._queue.put(pending)
        pending.done.wait()
        # Hop attribution happens here, in the submitter thread — the one
        # that owns the request's trace context; the worker only stamped
        # the batch pickup/completion times.
        queue_wait = max(0.0, pending.t_start - pending.t_enqueue)
        traverse = max(0.0, pending.t_done - pending.t_start)
        self._h_queue_wait.observe(queue_wait)
        self._h_traverse.observe(traverse)
        obs_trace.annotate("queue_wait", queue_wait)
        obs_trace.annotate("traverse", traverse)
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        """Stop the worker after it drains the queue (idempotent)."""
        with self._close_lock:
            if not self._closed:
                self._closed = True
                self._queue.put(_CLOSE)
        self._worker.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ worker

    def _serve(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            batch = [item]
            rows = item.X.shape[0]
            # Drain what is queued *now*: everything that arrived while the
            # previous batch was traversing rides this one.
            while rows < self.max_batch_rows:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _CLOSE:
                    self._run_batch(batch)
                    return
                batch.append(extra)
                rows += extra.X.shape[0]
            self._run_batch(batch)

    def _run_batch(self, batch: list) -> None:
        t_start = time.perf_counter()
        try:
            if len(batch) == 1:
                results = [self._predict(batch[0].X)]
            else:
                stacked = np.vstack([p.X for p in batch])
                y = self._predict(stacked)
                bounds = np.cumsum([0] + [p.X.shape[0] for p in batch])
                results = [y[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]
        except BaseException as exc:  # the whole batch shares the model error
            self._count_batch(batch, errored=True)
            t_done = time.perf_counter()
            for pending in batch:
                # Each rider re-raises its own copy: N submitter threads
                # raising one shared instance concurrently would clobber
                # each other's __traceback__ mid-flight.
                pending.t_start = t_start
                pending.t_done = t_done
                pending.error = self._rider_error(exc)
                pending.done.set()
            return
        self._count_batch(batch, errored=False)
        t_done = time.perf_counter()
        for pending, result in zip(batch, results):
            pending.t_start = t_start
            pending.t_done = t_done
            pending.result = result
            pending.done.set()

    def _count_batch(self, batch: list, *, errored: bool) -> None:
        with self._stats_lock:
            if errored:
                # An errored batch is still served traffic: count it into
                # the volume counters so stats() reports what actually ran.
                self._c_errors.inc(len(batch))
            self._c_requests.inc(len(batch))
            self._c_rows.inc(sum(p.X.shape[0] for p in batch))
            self._c_batches.inc()
            if len(batch) > self._g_batched_max.value:
                self._g_batched_max.set(len(batch))
            self._g_pending.dec(len(batch))

    @staticmethod
    def _rider_error(exc: BaseException) -> BaseException:
        """A per-rider copy of the batch error, chained to the original.

        ``copy.copy`` round-trips the exception through its own pickle-style
        reduction; anything that refuses (exotic __init__ signatures) is
        wrapped instead.  Either way the original — with its traceback —
        hangs off ``__cause__``.
        """
        try:
            clone = copy.copy(exc)
            if type(clone) is not type(exc):  # paranoid: copy() lied
                raise TypeError
        except Exception:
            clone = RuntimeError(f"batch prediction failed: {exc!r}")
        clone.__cause__ = exc
        return clone

    # ------------------------------------------------------------------- stats

    def pending_depth(self) -> int:
        """Requests submitted but not yet answered (the shed signal).

        The cheap, race-tolerant read the server's ``max_pending``
        admission gate polls per predict: momentarily stale is fine —
        shedding is statistical back-pressure, not an exact semaphore.
        """
        with self._stats_lock:
            return int(self._g_pending.value)

    def stats(self) -> dict[str, Any]:
        with self._stats_lock:
            requests = self._c_requests.value
            batches = self._c_batches.value
            return {
                "requests": requests,
                "rows": self._c_rows.value,
                "batches": batches,
                "errors": self._c_errors.value,
                "batched_requests_max": int(self._g_batched_max.value),
                # Queue-depth gauge: requests submitted but not yet answered
                # — the signal admission control bounds at the request layer.
                "pending": int(self._g_pending.value),
                "requests_per_batch_mean": (
                    requests / batches if batches else 0.0
                ),
            }
