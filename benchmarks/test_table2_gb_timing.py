"""Table 2 — Training and prediction times for Gradient Boosting.

Paper values: ~1.2 s training and ~20 ms prediction on both machines (with
750 estimators, depth 10, on scikit-learn's optimised C implementation).  Our
pure-NumPy trees are slower in absolute terms; the benchmark records both
times and checks the paper's qualitative points: training and prediction cost
are similar across the two machines, and both are negligible compared to a
CCSD run (minutes).
"""

import time

import numpy as np

from repro.core.estimator import FAST_GB_PARAMS, PAPER_GB_PARAMS
from repro.core.reporting import format_table
from repro.ml.gradient_boosting import GradientBoostingRegressor
from benchmarks.conftest import is_paper_scale
from benchmarks.helpers import print_banner


def _gb():
    params = PAPER_GB_PARAMS if is_paper_scale() else FAST_GB_PARAMS
    return GradientBoostingRegressor(random_state=0, **params)


def test_table2_gb_training_and_prediction_times(benchmark, aurora_dataset, frontier_dataset):
    rows = []
    timings = {}
    for ds in (aurora_dataset, frontier_dataset):
        model = _gb()
        t0 = time.perf_counter()
        model.fit(ds.X_train, ds.y_train)
        train_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        model.predict(ds.X_test)
        predict_time = time.perf_counter() - t0
        timings[ds.machine] = (train_time, predict_time)
        rows.append([ds.machine.capitalize(), f"{train_time:.2f} s", f"{predict_time*1e3:.1f} ms"])

    print_banner("Table 2: Training and prediction times for Gradient Boosting")
    print(format_table(["System", "Training", "Prediction"], rows))

    # Benchmark the prediction path (the latency a user-facing advisor pays).
    model = _gb().fit(aurora_dataset.X_train, aurora_dataset.y_train)
    benchmark(model.predict, aurora_dataset.X_test)

    # Qualitative checks: both machines cost about the same to train/predict,
    # and prediction is vastly cheaper than a CCSD iteration (tens of seconds).
    (a_train, a_pred), (f_train, f_pred) = timings["aurora"], timings["frontier"]
    assert 0.3 < a_train / f_train < 3.0
    assert a_pred < 5.0 and f_pred < 5.0
    assert a_pred < float(np.min(aurora_dataset.y))
