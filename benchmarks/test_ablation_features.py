"""Ablation — feature set of the runtime model.

The paper feeds the raw ⟨O, V, NumNodes, TileSize⟩ vector to its regressors.
This ablation checks how much (or little) physics-informed derived features
(O²V⁴ per node, total orbitals, work per worker) change the Gradient Boosting
model's accuracy, and verifies the raw feature set is already sufficient —
which is why the paper's simple feature choice works.
"""

from repro.core.estimator import ResourceEstimator
from repro.core.reporting import format_table
from benchmarks.helpers import print_banner


def test_ablation_derived_features(benchmark, aurora_dataset):
    ds = aurora_dataset

    def fit_and_score(derived: bool, log_target: bool):
        est = ResourceEstimator(
            preset="fast", derived_features=derived, log_target=log_target, random_state=0
        )
        est.fit(ds.X_train, ds.y_train)
        return est.evaluate(ds.X_test, ds.y_test)

    raw = benchmark.pedantic(fit_and_score, args=(False, False), rounds=1, iterations=1)
    derived = fit_and_score(True, False)
    log_raw = fit_and_score(False, True)

    print_banner("Ablation: feature engineering for the GB runtime model (Aurora)")
    rows = [
        ["raw (O, V, nodes, tile)", raw["r2"], raw["mae"], raw["mape"]],
        ["+ derived physics features", derived["r2"], derived["mae"], derived["mape"]],
        ["raw + log-target", log_raw["r2"], log_raw["mae"], log_raw["mape"]],
    ]
    print(format_table(["Feature set", "R2", "MAE", "MAPE"], rows))

    # The paper's raw feature set is already highly predictive...
    assert raw["r2"] > 0.9
    # ...and the engineered variants stay in the same accuracy class (no
    # order-of-magnitude change in MAPE in either direction).
    assert derived["mape"] < raw["mape"] * 3 + 0.05
    assert log_raw["mape"] < raw["mape"] * 3 + 0.05
