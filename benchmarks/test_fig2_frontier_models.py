"""Figure 2 — Performance metrics for Frontier.

Same nine-model / three-search comparison as Figure 1, on the Frontier
dataset.  The paper's observations: GB again gives the best overall metrics,
and Frontier is harder to predict than Aurora (lower R², higher MAPE).
"""

from repro.core.hyperopt import run_model_comparison
from repro.core.reporting import format_model_comparison
from benchmarks.conftest import is_paper_scale
from benchmarks.helpers import print_banner


def test_fig2_frontier_model_comparison(benchmark, frontier_dataset, aurora_dataset, n_jobs):
    scale = "paper" if is_paper_scale() else "fast"
    max_train = None if is_paper_scale() else 300

    results = benchmark.pedantic(
        run_model_comparison,
        kwargs=dict(
            dataset=frontier_dataset,
            scale=scale,
            cv=3,
            seed=0,
            max_train_samples=max_train,
            n_jobs=n_jobs,
        ),
        rounds=1,
        iterations=1,
    )

    print_banner("Figure 2: Performance metrics for Frontier (R2 / MAE / MAPE / search time)")
    print(format_model_comparison(results))

    best_per_model = {}
    for r in results:
        if r.model not in best_per_model or r.r2 > best_per_model[r.model].r2:
            best_per_model[r.model] = r

    assert len(results) == 9 * 3
    # GB remains at or near the top on Frontier.
    best_overall = max(best_per_model.values(), key=lambda r: r.r2)
    assert best_per_model["GB"].r2 >= best_overall.r2 - 0.05
    assert best_per_model["GB"].r2 >= best_per_model["BR"].r2
    assert best_overall.r2 > 0.85

    # Frontier is harder to predict than Aurora for the same GB configuration
    # (compare against the same reduced-scale Aurora search).
    aurora_results = run_model_comparison(
        aurora_dataset,
        models=["GB"],
        strategies=("GridSearchCV",),
        scale=scale,
        cv=3,
        seed=0,
        max_train_samples=max_train,
    )
    frontier_gb = [r for r in results if r.model == "GB" and r.search == "GridSearchCV"][0]
    assert frontier_gb.mape >= aurora_results[0].mape * 0.9
