"""Figure 6 — Frontier active learning for the shortest-time and budget questions.

Same campaigns as Figure 5 on the Frontier pool.  Paper observations: with
the STQ goal a MAPE of ~0.2 needs 450–650 experiments and ~0.1 needs ~850
(more than on Aurora); for the BQ goal uncertainty sampling reaches ~0.15
with ~350 experiments.
"""

from repro.core.active_learning import run_active_learning
from repro.core.reporting import format_active_learning_curves
from benchmarks.helpers import al_config, al_strategies, print_banner


def test_fig6_frontier_al_stq_bq_goals(benchmark, frontier_dataset, paper_scale):
    ds = frontier_dataset

    def campaign():
        results = []
        for goal in ("stq", "bq"):
            config = al_config(paper_scale, goal=goal)
            for strategy in al_strategies(paper_scale):
                results.append(
                    run_active_learning(
                        ds.X_train,
                        ds.y_train,
                        strategy,
                        config,
                        X_test=ds.X_test,
                        y_test=ds.y_test,
                    )
                )
        return results

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    print_banner("Figure 6: Frontier active learning for shortest time and budget question")
    print(format_active_learning_curves(results, metric="mape", use_goal=True))
    print()
    print(format_active_learning_curves(results, metric="r2", use_goal=True))

    stq = {r.strategy: r for r in results if r.goal == "stq"}
    bq = {r.strategy: r for r in results if r.goal == "bq"}
    assert set(stq) == {"RS", "US", "QC"} and set(bq) == {"RS", "US", "QC"}

    # An informed strategy reaches a usable goal MAPE within the pool for at
    # least one of the two goals (Frontier needs more data than Aurora).
    informed_reach = [
        r.samples_to_reach_mape(0.3, use_goal=True)
        for r in results
        if r.strategy in ("US", "QC")
    ]
    print("Experiments to reach goal-MAPE<=0.3 (US/QC, STQ+BQ):", informed_reach)
    assert any(reach is not None for reach in informed_reach)

    for r in results:
        assert len(r.goal_mape) == len(r.known_sizes)
