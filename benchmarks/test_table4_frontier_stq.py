"""Table 4 — Frontier shortest time results.

Same protocol as Table 3 on the Frontier test pool.  Paper metrics:
R2=0.969, MAE=4.65, MAPE=0.073 with 5 incorrect configurations (out of 20) —
notably worse than Aurora, because Frontier runtimes are noisier.
"""

from repro.core.evaluation import evaluate_question_predictions, optimal_configurations
from repro.core.reporting import format_metrics, format_question_table
from benchmarks.helpers import print_banner


def test_table4_frontier_shortest_time(
    benchmark, frontier_dataset, frontier_estimator, aurora_dataset, aurora_estimator
):
    ds, est = frontier_dataset, frontier_estimator

    def build_records():
        y_pred = est.predict(ds.X_test)
        return optimal_configurations(ds.X_test, ds.y_test, y_pred, objective="runtime")

    records = benchmark.pedantic(build_records, rounds=1, iterations=1)
    report = evaluate_question_predictions(records, objective="runtime")

    print_banner("Table 4: Frontier shortest time results")
    print(format_question_table(records, objective="runtime"))
    print()
    print(format_metrics(report, title="Frontier STQ metrics (paper: r2=0.969 mae=4.65 mape=0.073)"))

    assert report["n_problems"] == 20
    assert report["r2"] > 0.9
    assert report["mape"] < 0.15

    # Shape check vs Table 3: Frontier STQ answers are harder than Aurora's.
    aurora_records = optimal_configurations(
        aurora_dataset.X_test,
        aurora_dataset.y_test,
        aurora_estimator.predict(aurora_dataset.X_test),
        objective="runtime",
    )
    aurora_report = evaluate_question_predictions(aurora_records, objective="runtime")
    assert report["mape"] >= aurora_report["mape"] * 0.8
