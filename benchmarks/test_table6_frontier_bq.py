"""Table 6 — Frontier shortest node-hours (Budget Question) results.

Paper metrics: R2=0.892, MAE=0.59, MAPE=0.11 with 9 incorrect configurations
(out of 20).  As on Aurora, the budget objective picks far fewer nodes than
the shortest-time objective.
"""

import numpy as np

from repro.core.evaluation import evaluate_question_predictions, optimal_configurations
from repro.core.reporting import format_metrics, format_question_table
from benchmarks.helpers import print_banner


def test_table6_frontier_budget_question(benchmark, frontier_dataset, frontier_estimator):
    ds, est = frontier_dataset, frontier_estimator

    def build_records():
        y_pred = est.predict(ds.X_test)
        return optimal_configurations(ds.X_test, ds.y_test, y_pred, objective="node_hours")

    records = benchmark.pedantic(build_records, rounds=1, iterations=1)
    report = evaluate_question_predictions(records, objective="node_hours")

    print_banner("Table 6: Frontier shortest node hours results")
    print(format_question_table(records, objective="node_hours"))
    print()
    print(format_metrics(report, title="Frontier BQ metrics (paper: r2=0.892 mae=0.59 mape=0.11)"))

    assert report["n_problems"] == 20
    assert report["r2"] > 0.85
    assert report["mape"] < 0.25

    stq_records = optimal_configurations(
        ds.X_test, ds.y_test, est.predict(ds.X_test), objective="runtime"
    )
    stq_nodes = np.mean([r.true_nodes for r in stq_records])
    bq_nodes = np.mean([r.true_nodes for r in records])
    print(f"\nMean optimal nodes: STQ={stq_nodes:.1f}  BQ={bq_nodes:.1f}")
    assert bq_nodes < stq_nodes
