"""Figure 1 — Performance metrics for Aurora.

The paper compares nine models (PR, KR, DT, RF, GB, AB, GP, BR, SVR) tuned
with three search strategies (GridSearchCV, RandomizedSearchCV, BayesSearchCV)
and reports R², MAE, MAPE and the search runtime for each combination.  The
headline conclusion is that Gradient Boosting gives the best overall
R²/MAE/MAPE on Aurora.
"""

import numpy as np

from repro.core.hyperopt import run_model_comparison
from repro.core.reporting import format_model_comparison
from benchmarks.conftest import is_paper_scale
from benchmarks.helpers import print_banner


def test_fig1_aurora_model_comparison(benchmark, aurora_dataset, n_jobs):
    scale = "paper" if is_paper_scale() else "fast"
    max_train = None if is_paper_scale() else 300

    results = benchmark.pedantic(
        run_model_comparison,
        kwargs=dict(
            dataset=aurora_dataset,
            scale=scale,
            cv=3,
            seed=0,
            max_train_samples=max_train,
            n_jobs=n_jobs,
        ),
        rounds=1,
        iterations=1,
    )

    print_banner("Figure 1: Performance metrics for Aurora (R2 / MAE / MAPE / search time)")
    print(format_model_comparison(results))

    best_per_model = {}
    for r in results:
        best_per_model.setdefault(r.model, r)
        if r.r2 > best_per_model[r.model].r2:
            best_per_model[r.model] = r
    ranking = sorted(best_per_model.values(), key=lambda r: r.r2, reverse=True)
    print("\nBest R2 per model:", [(r.model, round(r.r2, 4)) for r in ranking])

    # Every model x strategy combination produced a result.
    assert len(results) == 9 * 3
    # Tree ensembles (GB/RF) dominate the simple baselines, as in the paper.
    assert best_per_model["GB"].r2 >= best_per_model["BR"].r2
    assert best_per_model["GB"].r2 >= best_per_model["DT"].r2 - 0.02
    # GB is at or near the top (within 0.02 R2 of the best model).
    best_overall = ranking[0]
    assert best_per_model["GB"].r2 >= best_overall.r2 - 0.05
    # Aurora is predictable: the best model explains most of the variance.
    assert best_overall.r2 > 0.9
    assert np.isfinite([r.mape for r in results]).all()
