"""Ablation — active-learning campaign parameters.

Algorithm 2 fixes the committee size at 5 and the query batch at 50.  This
ablation varies the committee size and the query batch size for the
query-by-committee strategy on Aurora and reports the final pool MAPE for a
fixed labelling budget, showing the method is robust to these choices (which
is why the paper does not tune them).
"""

from repro.core.active_learning import ActiveLearningConfig, QueryByCommittee, run_active_learning
from repro.core.reporting import format_table
from repro.ml.gradient_boosting import GradientBoostingRegressor
from benchmarks.helpers import print_banner


def _committee(n_members: int) -> QueryByCommittee:
    return QueryByCommittee(
        n_committee=n_members,
        base_model=GradientBoostingRegressor(
            n_estimators=50, max_depth=6, subsample=0.8, random_state=0
        ),
    )


def test_ablation_qc_committee_and_batch_size(benchmark, aurora_dataset, paper_scale):
    ds = aurora_dataset
    budget = 350  # total labelled experiments at the end of each campaign

    def run(n_members: int, query_size: int):
        n_queries = max(1, (budget - 50) // query_size)
        config = ActiveLearningConfig(
            n_initial=50, query_size=query_size, n_queries=n_queries, random_state=0
        )
        result = run_active_learning(ds.X_train, ds.y_train, _committee(n_members), config)
        return result.mape[-1], result.known_sizes[-1]

    baseline = benchmark.pedantic(run, args=(5, 100), rounds=1, iterations=1)

    variants = {
        "committee=5, batch=100 (baseline)": baseline,
        "committee=3, batch=100": run(3, 100),
        "committee=5, batch=150": run(5, 150),
    }

    print_banner("Ablation: query-by-committee parameters (Aurora, ~350-experiment budget)")
    rows = [[name, size, mape] for name, (mape, size) in variants.items()]
    print(format_table(["Variant", "Known experiments", "Final MAPE"], rows))

    mapes = [mape for mape, _ in variants.values()]
    # All variants land in the same accuracy class: QC is robust to its
    # committee/batch hyper-parameters.
    assert max(mapes) < 0.5
    assert max(mapes) - min(mapes) < 0.25
