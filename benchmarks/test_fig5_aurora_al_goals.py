"""Figure 5 — Aurora active learning for the shortest-time and budget questions.

Campaigns identical to Figure 3 but evaluated with the question-level losses
(the true runtime / node-hours of the configuration each round's model would
recommend, per problem size in the test pool).  Paper observations: a goal
MAPE of ~0.2 is achievable with ~450 experiments (25 % of the dataset) and
~0.1 with ~550 experiments for STQ; the BQ goal reaches ~0.2 around 500
experiments with uncertainty sampling.
"""

from repro.core.active_learning import run_active_learning
from repro.core.reporting import format_active_learning_curves
from benchmarks.helpers import al_config, al_strategies, print_banner


def test_fig5_aurora_al_stq_bq_goals(benchmark, aurora_dataset, paper_scale):
    ds = aurora_dataset

    def campaign():
        results = []
        for goal in ("stq", "bq"):
            config = al_config(paper_scale, goal=goal)
            for strategy in al_strategies(paper_scale):
                results.append(
                    run_active_learning(
                        ds.X_train,
                        ds.y_train,
                        strategy,
                        config,
                        X_test=ds.X_test,
                        y_test=ds.y_test,
                    )
                )
        return results

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    print_banner("Figure 5: Aurora active learning for shortest time and budget question")
    print(format_active_learning_curves(results, metric="mape", use_goal=True))
    print()
    print(format_active_learning_curves(results, metric="r2", use_goal=True))

    stq = {r.strategy: r for r in results if r.goal == "stq"}
    bq = {r.strategy: r for r in results if r.goal == "bq"}
    assert set(stq) == {"RS", "US", "QC"} and set(bq) == {"RS", "US", "QC"}

    # The paper's headline: a goal MAPE around 0.2 is reachable with a
    # fraction of the full dataset using an informed strategy.
    informed_reach = [
        r.samples_to_reach_mape(0.25, use_goal=True)
        for r in results
        if r.goal == "stq" and r.strategy in ("US", "QC")
    ]
    print("STQ experiments to reach goal-MAPE<=0.25 (US, QC):", informed_reach)
    assert any(reach is not None and reach < ds.n_train for reach in informed_reach)

    # Goal curves exist and are finite for every strategy.
    for r in results:
        assert len(r.goal_mape) == len(r.known_sizes)
        assert all(m >= 0 for m in r.goal_mape)
