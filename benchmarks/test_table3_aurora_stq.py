"""Table 3 — Aurora shortest time results.

For every (O, V) problem size in the Aurora test pool, the true optimal
(nodes, tile, runtime) is compared against the configuration recommended by
the trained GB model; recommendations that differ are shown in parentheses.
Paper metrics over the problem sizes: R2=0.999, MAE=2.36, MAPE=0.023 with 3
incorrectly predicted configurations (out of 22).
"""

from repro.core.evaluation import evaluate_question_predictions, optimal_configurations
from repro.core.reporting import format_metrics, format_question_table
from benchmarks.helpers import print_banner


def test_table3_aurora_shortest_time(benchmark, aurora_dataset, aurora_estimator):
    ds, est = aurora_dataset, aurora_estimator

    def build_records():
        y_pred = est.predict(ds.X_test)
        return optimal_configurations(ds.X_test, ds.y_test, y_pred, objective="runtime")

    records = benchmark.pedantic(build_records, rounds=1, iterations=1)
    report = evaluate_question_predictions(records, objective="runtime")

    print_banner("Table 3: Aurora shortest time results")
    print(format_question_table(records, objective="runtime"))
    print()
    print(format_metrics(report, title="Aurora STQ metrics (paper: r2=0.999 mae=2.36 mape=0.023)"))

    # All 22 Aurora problem sizes are represented in the test pool.
    assert report["n_problems"] == 22
    # The recommendation quality is high: most configurations correct, and the
    # achieved runtimes are close to the true optima.
    assert report["r2"] > 0.95
    assert report["mape"] < 0.10
    assert report["n_incorrect_configs"] <= 14
