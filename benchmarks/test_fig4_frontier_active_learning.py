"""Figure 4 — Frontier active learning results (runtime-regression goal).

Same campaigns as Figure 3 on the Frontier pool.  The paper notes Frontier is
harder to predict than Aurora, so the curves sit at higher MAPE for the same
number of known experiments.
"""

from repro.core.active_learning import run_active_learning
from repro.core.reporting import format_active_learning_curves
from benchmarks.helpers import al_config, al_strategies, print_banner


def test_fig4_frontier_active_learning(benchmark, frontier_dataset, aurora_dataset, paper_scale):
    ds = frontier_dataset
    config = al_config(paper_scale)

    def campaign():
        results = []
        for strategy in al_strategies(paper_scale):
            results.append(run_active_learning(ds.X_train, ds.y_train, strategy, config))
        return results

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    print_banner("Figure 4: Frontier active learning results")
    for metric in ("r2", "mape", "mae"):
        print(format_active_learning_curves(results, metric=metric))
        print()

    by_name = {r.strategy: r for r in results}
    assert set(by_name) == {"RS", "US", "QC"}
    for r in results:
        assert r.mape[-1] <= r.mape[0] + 0.05

    # Frontier (noisier machine) is harder than Aurora for the same strategy
    # and budget: compare final QC MAPE against an identical Aurora campaign.
    aurora_qc = run_active_learning(
        aurora_dataset.X_train, aurora_dataset.y_train, al_strategies(paper_scale)[2], config
    )
    print(f"Final QC MAPE: frontier={by_name['QC'].mape[-1]:.3f} aurora={aurora_qc.mape[-1]:.3f}")
    assert by_name["QC"].mape[-1] >= aurora_qc.mape[-1] * 0.8
