"""Serve-throughput and tail-latency artifact for the inference service.

Measures the serving layer end to end against the paper's deployed
Gradient Boosting configuration (750 trees, depth 10 by default): an
in-process :class:`~repro.serve.server.ServeServer` hosts the fitted
advisor, a pool of concurrent clients fires single-row predict requests at
it, and the run is repeated in both server modes:

* **single-flight** — micro-batching disabled: every request pays its own
  packed traversal (the per-call accumulation loop over all 750 trees
  dominates, regardless of row count);
* **micro-batched** — concurrent requests coalesce into one packed
  traversal per tick, the PR 5 headline.

Byte-parity of the served path against local single-request inference is
asserted before anything is timed, in both modes.  The JSON artifact
(``BENCH_PR8.json`` by convention) records requests/s, **latency
percentiles through p99** and the coalescing statistics; CI uploads it and
enforces the PR 8 tail guard — micro-batched p99 must not exceed the
single-flight p50 at the same concurrency — so a regression that doubles
the tail while holding the mean cannot merge green.  Run locally with::

    PYTHONPATH=src python benchmarks/serve_throughput.py --output BENCH_PR8.json

``--trees/--depth/--clients/--requests`` shrink the experiment for quick
smoke runs (e.g. ``--trees 50 --requests 10``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time

import numpy as np


def _run_mode(
    advisor, X_rows: np.ndarray, *, micro_batch: bool, clients: int, requests: int
) -> dict:
    """Serve ``clients`` concurrent workers × ``requests`` single-row queries."""
    from repro.serve import ServeClient, ServeServer

    latencies = np.zeros(clients * requests)
    with ServeServer(advisor, micro_batch=micro_batch) as server:
        barrier = threading.Barrier(clients + 1)

        def worker(c: int) -> None:
            client = ServeClient(server.url)
            try:
                # Warm the connection outside the timed window.
                client.ping()
                barrier.wait()
                for r in range(requests):
                    row = X_rows[(c * requests + r) % len(X_rows)]
                    start = time.perf_counter()
                    client.predict(row)
                    latencies[c * requests + r] = time.perf_counter() - start
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(c,)) for c in range(clients)]
        for t in threads:
            t.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - wall_start
        stats = server.stats()

    n = clients * requests
    return {
        "mode": "micro_batched" if micro_batch else "single_flight",
        "clients": clients,
        "requests": n,
        "wall_s": wall_s,
        "requests_per_s": n / wall_s,
        "latency_ms": {
            "mean": float(np.mean(latencies)) * 1e3,
            "p50": float(np.percentile(latencies, 50)) * 1e3,
            "p95": float(np.percentile(latencies, 95)) * 1e3,
            "p99": float(np.percentile(latencies, 99)) * 1e3,
            "max": float(np.max(latencies)) * 1e3,
        },
        "batcher": stats["models"]["default"]["batcher"],
    }


def _assert_parity(advisor, X_rows: np.ndarray, *, micro_batch: bool, clients: int) -> None:
    """Concurrent served single-row predictions must equal the local ones."""
    from repro.serve import ServeClient, ServeServer

    local = advisor.estimator.predict(X_rows)
    failures: list = []
    with ServeServer(advisor, micro_batch=micro_batch) as server:
        def worker(c: int) -> None:
            client = ServeClient(server.url)
            try:
                for i in range(c, len(X_rows), clients):
                    got = client.predict(X_rows[i])[0]
                    if got != local[i]:
                        failures.append((i, got, local[i]))
            finally:
                client.close()

        threads = [threading.Thread(target=worker, args=(c,)) for c in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    if failures:
        raise SystemExit(
            f"parity violation ({'micro' if micro_batch else 'single'}): {failures[:3]}"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_PR8.json", help="JSON artifact path")
    parser.add_argument("--trees", type=int, default=750, help="GB n_estimators")
    parser.add_argument("--depth", type=int, default=10, help="GB max_depth")
    parser.add_argument("--clients", type=int, default=8, help="concurrent client threads")
    parser.add_argument(
        "--requests",
        type=int,
        default=150,
        help=(
            "timed single-row requests per client (the default yields "
            "clients*150 latency samples, enough for a stable p99)"
        ),
    )
    parser.add_argument("--dataset", default="aurora", help="dataset name (Table 1)")
    args = parser.parse_args(argv)

    from repro.core.advisor import ResourceAdvisor
    from repro.core.estimator import ResourceEstimator
    from repro.data.datasets import build_dataset
    from repro.ml.gradient_boosting import GradientBoostingRegressor

    dataset = build_dataset(args.dataset, seed=0)
    estimator = ResourceEstimator(
        model=GradientBoostingRegressor(
            n_estimators=args.trees, max_depth=args.depth, random_state=0
        )
    )
    start = time.perf_counter()
    advisor = ResourceAdvisor.from_dataset(dataset, estimator=estimator)
    fit_s = time.perf_counter() - start
    X_rows = np.ascontiguousarray(dataset.X_test)

    # Parity first: nothing is recorded unless the served path is
    # byte-identical to local single-request inference, in both modes,
    # under concurrency.
    probe = X_rows[: min(64, len(X_rows))]
    _assert_parity(advisor, probe, micro_batch=True, clients=args.clients)
    _assert_parity(advisor, probe, micro_batch=False, clients=args.clients)

    single = _run_mode(
        advisor, X_rows, micro_batch=False, clients=args.clients, requests=args.requests
    )
    micro = _run_mode(
        advisor, X_rows, micro_batch=True, clients=args.clients, requests=args.requests
    )
    speedup = micro["requests_per_s"] / single["requests_per_s"]

    report = {
        "benchmark": "online serving throughput and tail latency (PR 8)",
        "config": {
            "dataset": args.dataset,
            "n_estimators": args.trees,
            "max_depth": args.depth,
            "clients": args.clients,
            "requests_per_client": args.requests,
            "fit_s": fit_s,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "single_flight": single,
        "micro_batched": micro,
        "speedup": speedup,
        "parity": "byte-identical (asserted concurrently in both modes before timing)",
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    print(
        f"single-flight {single['requests_per_s']:.0f} req/s "
        f"(p50 {single['latency_ms']['p50']:.2f} ms, "
        f"p99 {single['latency_ms']['p99']:.2f} ms) | "
        f"micro-batched {micro['requests_per_s']:.0f} req/s "
        f"(p50 {micro['latency_ms']['p50']:.2f} ms, "
        f"p99 {micro['latency_ms']['p99']:.2f} ms, "
        f"mean {micro['batcher']['requests_per_batch_mean']:.1f} req/traversal) | "
        f"speedup {speedup:.2f}x"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
