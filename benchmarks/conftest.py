"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  By default the
experiments run at a reduced "bench" scale (smaller ensembles, fewer active-
learning rounds, training subsets for the expensive searches) so the whole
harness completes in minutes; set ``REPRO_PAPER_SCALE=1`` to use the paper's
full experiment sizes.

The harness is excluded from the tier-1 run (``pyproject.toml`` restricts
``testpaths`` to ``tests/``); run it with an explicit ``benchmarks/`` path.
Every test collected here is tagged with the ``benchmark`` marker.  The
``--jobs N`` option (or ``REPRO_JOBS=N``) fans the fit-heavy sweeps out over
``N`` worker processes via :mod:`repro.parallel`; results are identical for
any value.  The ``--memo-dir SPEC`` option (or ``REPRO_MEMO_DIR=SPEC``)
activates the cross-process memo store — ``SPEC`` is a directory or a
``memo://host:port`` service URL (see ``repro-chem memo-serve``) — so
workers, successive harness runs and other hosts share candidate
evaluations and interrupted sweeps resume; results are identical with or
without it.
"""

from __future__ import annotations

import os

import pytest

from repro.core.estimator import ResourceEstimator
from repro.data.datasets import CCSDDataset, build_dataset

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "0") not in ("0", "", "false", "False")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=int(os.environ.get("REPRO_JOBS", "1")),
        help="Worker processes for fit-heavy benchmarks (1=serial, -1=all CPUs).",
    )
    parser.addoption(
        "--memo-dir",
        action="store",
        default=os.environ.get("REPRO_MEMO_DIR") or None,
        help=(
            "Cross-process memo store shared by workers and successive harness "
            "runs: a directory or a memo://host:port service URL "
            "(default: $REPRO_MEMO_DIR; unset = no store)."
        ),
    )


def pytest_collection_modifyitems(items: list[pytest.Item]) -> None:
    bench_dir = os.path.dirname(__file__)
    for item in items:
        if str(item.path).startswith(bench_dir):
            item.add_marker(pytest.mark.benchmark)


@pytest.fixture(scope="session")
def n_jobs(request: pytest.FixtureRequest) -> int:
    """Worker-process count for benchmarks that support parallel execution."""
    return request.config.getoption("--jobs")


@pytest.fixture(scope="session", autouse=True)
def memo_store(request: pytest.FixtureRequest):
    """Activate the cross-process memo store for the whole harness run.

    With ``--memo-dir`` (or ``REPRO_MEMO_DIR``) unset this is a no-op; with
    it set, every benchmark's candidate evaluations are shared across
    worker processes and persist across harness runs.
    """
    path = request.config.getoption("--memo-dir")
    if not path:
        yield None
        return
    from repro.parallel.store import configure_store

    yield configure_store(path)
    configure_store(None)


def is_paper_scale() -> bool:
    return PAPER_SCALE


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return PAPER_SCALE


@pytest.fixture(scope="session")
def aurora_dataset() -> CCSDDataset:
    """The paper-sized Aurora dataset (Table 1: 2329 rows, 1746/583 split)."""
    return build_dataset("aurora", seed=0)


@pytest.fixture(scope="session")
def frontier_dataset() -> CCSDDataset:
    """The paper-sized Frontier dataset (Table 1: 2454 rows, 1840/614 split)."""
    return build_dataset("frontier", seed=0)


def _make_estimator() -> ResourceEstimator:
    preset = "paper" if PAPER_SCALE else "fast"
    return ResourceEstimator(preset=preset, random_state=0)


@pytest.fixture(scope="session")
def aurora_estimator(aurora_dataset) -> ResourceEstimator:
    """GB runtime model trained on the Aurora training split."""
    return _make_estimator().fit(aurora_dataset.X_train, aurora_dataset.y_train)


@pytest.fixture(scope="session")
def frontier_estimator(frontier_dataset) -> ResourceEstimator:
    """GB runtime model trained on the Frontier training split."""
    return _make_estimator().fit(frontier_dataset.X_train, frontier_dataset.y_train)
