"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  By default the
experiments run at a reduced "bench" scale (smaller ensembles, fewer active-
learning rounds, training subsets for the expensive searches) so the whole
harness completes in minutes; set ``REPRO_PAPER_SCALE=1`` to use the paper's
full experiment sizes.
"""

from __future__ import annotations

import os

import pytest

from repro.core.estimator import ResourceEstimator
from repro.data.datasets import CCSDDataset, build_dataset

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "0") not in ("0", "", "false", "False")


def is_paper_scale() -> bool:
    return PAPER_SCALE


@pytest.fixture(scope="session")
def paper_scale() -> bool:
    return PAPER_SCALE


@pytest.fixture(scope="session")
def aurora_dataset() -> CCSDDataset:
    """The paper-sized Aurora dataset (Table 1: 2329 rows, 1746/583 split)."""
    return build_dataset("aurora", seed=0)


@pytest.fixture(scope="session")
def frontier_dataset() -> CCSDDataset:
    """The paper-sized Frontier dataset (Table 1: 2454 rows, 1840/614 split)."""
    return build_dataset("frontier", seed=0)


def _make_estimator() -> ResourceEstimator:
    preset = "paper" if PAPER_SCALE else "fast"
    return ResourceEstimator(preset=preset, random_state=0)


@pytest.fixture(scope="session")
def aurora_estimator(aurora_dataset) -> ResourceEstimator:
    """GB runtime model trained on the Aurora training split."""
    return _make_estimator().fit(aurora_dataset.X_train, aurora_dataset.y_train)


@pytest.fixture(scope="session")
def frontier_estimator(frontier_dataset) -> ResourceEstimator:
    """GB runtime model trained on the Frontier training split."""
    return _make_estimator().fit(frontier_dataset.X_train, frontier_dataset.y_train)
