"""Ablation — tile-size efficiency model of the runtime simulator.

DESIGN.md calls out the saturating GEMM-efficiency curve as a key modelling
choice: it is what creates the interior tile-size optimum the paper's users
must navigate.  This ablation compares the full simulator against a variant
with the tile-efficiency effect disabled (efficiency pinned near 1) and shows
that without it the optimal tile collapses to the smallest value (maximum
parallel slack), losing the paper's qualitative behaviour.
"""

import dataclasses

import numpy as np

from repro.chem.orbitals import ProblemSize
from repro.machines import AURORA
from repro.tamm.runtime import TammRuntimeSimulator
from benchmarks.helpers import print_banner

_TILES = (40, 60, 80, 100, 120, 140)


def _optimal_tile(simulator: TammRuntimeSimulator, problem: ProblemSize, nodes: int) -> int:
    times = {
        t: simulator.simulate_iteration(problem, nodes, t, rng=0, apply_noise=False).total_time
        for t in _TILES
    }
    return min(times, key=times.get)


def test_ablation_tile_efficiency_model(benchmark):
    problem = ProblemSize(116, 840)
    nodes = 40

    full = TammRuntimeSimulator(AURORA)
    # Ablated machine: GEMM efficiency saturates immediately (halfpoint ~ 1).
    flat_machine = dataclasses.replace(AURORA, gemm_halfpoint_tile=1.0)
    ablated = TammRuntimeSimulator(flat_machine)

    full_opt = benchmark.pedantic(_optimal_tile, args=(full, problem, nodes), rounds=1, iterations=1)
    ablated_opt = _optimal_tile(ablated, problem, nodes)

    full_curve = [
        full.simulate_iteration(problem, nodes, t, rng=0, apply_noise=False).total_time for t in _TILES
    ]
    ablated_curve = [
        ablated.simulate_iteration(problem, nodes, t, rng=0, apply_noise=False).total_time
        for t in _TILES
    ]
    print_banner("Ablation: tile-size efficiency model (Aurora, O=116, V=840, 40 nodes)")
    for t, f, a in zip(_TILES, full_curve, ablated_curve):
        print(f"  tile={t:4d}  full={f:8.1f}s  no-tile-efficiency={a:8.1f}s")
    print(f"  optimal tile: full={full_opt}, ablated={ablated_opt}")

    # With the efficiency model the optimum is interior (not the smallest
    # tile); removing it shifts the optimum towards smaller tiles and removes
    # most of the penalty small tiles pay relative to the optimum.
    assert min(_TILES) < full_opt
    assert ablated_opt <= full_opt
    full_small_tile_penalty = full_curve[0] / min(full_curve)
    ablated_small_tile_penalty = ablated_curve[0] / min(ablated_curve)
    assert ablated_small_tile_penalty < full_small_tile_penalty
    # The efficiency model only changes *where* the optimum is, not feasibility.
    assert np.all(np.isfinite(full_curve)) and np.all(np.isfinite(ablated_curve))
