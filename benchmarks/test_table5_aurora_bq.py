"""Table 5 — Aurora shortest node-hours (Budget Question) results.

For every Aurora problem size the configuration minimising node-hours is
compared with the model's recommendation.  Paper metrics: R2=0.979, MAE=0.41,
MAPE=0.12 with 5 incorrect configurations.  The key qualitative observation
(comparing Tables 3 and 5) is that the budget objective selects far fewer
nodes than the shortest-time objective.
"""

import numpy as np

from repro.core.evaluation import evaluate_question_predictions, optimal_configurations
from repro.core.reporting import format_metrics, format_question_table
from benchmarks.helpers import print_banner


def test_table5_aurora_budget_question(benchmark, aurora_dataset, aurora_estimator):
    ds, est = aurora_dataset, aurora_estimator

    def build_records():
        y_pred = est.predict(ds.X_test)
        return optimal_configurations(ds.X_test, ds.y_test, y_pred, objective="node_hours")

    records = benchmark.pedantic(build_records, rounds=1, iterations=1)
    report = evaluate_question_predictions(records, objective="node_hours")

    print_banner("Table 5: Aurora shortest node hours results")
    print(format_question_table(records, objective="node_hours"))
    print()
    print(format_metrics(report, title="Aurora BQ metrics (paper: r2=0.979 mae=0.41 mape=0.12)"))

    assert report["n_problems"] == 22
    assert report["r2"] > 0.9
    assert report["mape"] < 0.2

    # STQ selects many nodes, BQ selects few (paper's key observation).
    stq_records = optimal_configurations(
        ds.X_test, ds.y_test, est.predict(ds.X_test), objective="runtime"
    )
    stq_nodes = np.mean([r.true_nodes for r in stq_records])
    bq_nodes = np.mean([r.true_nodes for r in records])
    print(f"\nMean optimal nodes: STQ={stq_nodes:.1f}  BQ={bq_nodes:.1f}")
    assert bq_nodes < stq_nodes
