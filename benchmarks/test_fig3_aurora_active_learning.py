"""Figure 3 — Aurora active learning results (runtime-regression goal).

Learning curves (R², MAPE, MAE over the training pool) versus known-data size
for the three query strategies: random sampling (RS), uncertainty sampling
with a Gaussian Process (US) and query-by-committee with Gradient Boosting
(QC).  The paper's observation: the informed strategies reach useful accuracy
with a fraction of the full dataset.
"""

from repro.core.active_learning import run_active_learning
from repro.core.reporting import format_active_learning_curves
from benchmarks.helpers import al_config, al_strategies, print_banner


def test_fig3_aurora_active_learning(benchmark, aurora_dataset, paper_scale):
    ds = aurora_dataset
    config = al_config(paper_scale)

    def campaign():
        results = []
        for strategy in al_strategies(paper_scale):
            results.append(run_active_learning(ds.X_train, ds.y_train, strategy, config))
        return results

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)

    print_banner("Figure 3: Aurora active learning results")
    for metric in ("r2", "mape", "mae"):
        print(format_active_learning_curves(results, metric=metric))
        print()

    by_name = {r.strategy: r for r in results}
    assert set(by_name) == {"RS", "US", "QC"}
    # Curves improve as more experiments are labelled.
    for r in results:
        assert r.mape[-1] <= r.mape[0] + 0.05
    # The informed GB-committee strategy reaches a usable MAPE (paper: ~0.2
    # around 450 experiments) within the campaign.
    qc_reach = by_name["QC"].samples_to_reach_mape(0.2)
    print("QC experiments to reach MAPE<=0.2:", qc_reach)
    assert qc_reach is not None
    assert qc_reach <= ds.n_train
