"""Table 1 — Datasets and the corresponding size breakdowns.

Paper values: Aurora 2329 total (1746 train / 583 test), Frontier 2454 total
(1840 train / 614 test).  The generated datasets reproduce these sizes exactly
by construction; the benchmark times dataset generation.
"""

from repro.core.reporting import format_table
from repro.data.datasets import build_dataset
from benchmarks.helpers import print_banner


def test_table1_dataset_sizes(benchmark, aurora_dataset, frontier_dataset):
    def regenerate():
        return build_dataset("aurora", seed=1, n_total=500)

    benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for ds in (aurora_dataset, frontier_dataset):
        rows.append([ds.machine.capitalize(), ds.n_rows, ds.n_train, ds.n_test])
    print_banner("Table 1: Datasets and the corresponding size breakdowns")
    print(format_table(["System", "Total", "Train", "Test"], rows))

    assert (aurora_dataset.n_rows, aurora_dataset.n_train, aurora_dataset.n_test) == (2329, 1746, 583)
    assert (frontier_dataset.n_rows, frontier_dataset.n_train, frontier_dataset.n_test) == (2454, 1840, 614)
