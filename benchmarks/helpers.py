"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from typing import Sequence

from repro.core.active_learning import (
    ActiveLearningConfig,
    QueryByCommittee,
    QueryStrategy,
    RandomSampling,
    UncertaintySampling,
)
from repro.ml.gradient_boosting import GradientBoostingRegressor

__all__ = ["al_config", "al_strategies", "print_banner"]


def print_banner(title: str) -> None:
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


def al_config(paper_scale: bool, goal: str | None = None, seed: int = 0) -> ActiveLearningConfig:
    """Active-learning campaign sizes (Algorithms 1-2 at paper scale)."""
    if paper_scale:
        return ActiveLearningConfig(
            n_initial=50, query_size=50, n_queries=20, random_state=seed, goal=goal
        )
    return ActiveLearningConfig(
        n_initial=50, query_size=100, n_queries=6, random_state=seed, goal=goal
    )


def _committee_model(paper_scale: bool) -> GradientBoostingRegressor:
    if paper_scale:
        return GradientBoostingRegressor(n_estimators=200, max_depth=8, subsample=0.8, random_state=0)
    return GradientBoostingRegressor(n_estimators=60, max_depth=6, subsample=0.8, random_state=0)


def al_strategies(paper_scale: bool) -> Sequence[QueryStrategy]:
    """The paper's three query strategies: RS baseline, US (GP), QC (GB committee)."""
    return (
        RandomSampling(model=_committee_model(paper_scale)),
        UncertaintySampling(reoptimize_every=5 if not paper_scale else 3),
        QueryByCommittee(n_committee=5, base_model=_committee_model(paper_scale)),
    )
