"""Perf-trajectory artifact for the GB fit and predict engines.

Times the paper's deployed Gradient Boosting configuration (750 trees,
depth 10 by default) end to end:

- **fit**: the exact split-search engine vs the histogram-binned one
  (``tree_method="hist"``).  The two fits are *interleaved* — each repeat
  runs one cold exact fit then one cold hist fit — so slow-box noise hits
  both engines alike and the reported best-of ratio is robust; the hist
  engine's training-set R² is recorded next to the exact engine's to pin
  the quality cost of binning.
- **predict**: the historical per-tree object path vs the packed flat-array
  engine (cold = first call, including the one-off traversal-table build;
  warm = steady state).  Bit-parity between the two predict paths is
  asserted before anything is recorded.

Measurements land in a JSON artifact (``BENCH_PR6.json`` by convention).
CI runs this from the memo-service job, uploads the JSON, and enforces the
hist-fit speedup floor, building a perf trajectory across PRs; run it
locally with::

    PYTHONPATH=src python benchmarks/perf_trajectory.py --output BENCH_PR6.json

The ``--trees/--depth/--repeats/--fit-repeats`` flags shrink the experiment
for quick smoke runs (e.g. ``--trees 50 --repeats 1 --fit-repeats 1``).
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import sys
import time

import numpy as np


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _object_path_predict(gb, X: np.ndarray) -> np.ndarray:
    """The historical per-tree prediction loop (the pre-packed code path)."""
    preds = np.full(X.shape[0], gb.init_)
    for tree in gb.estimators_:
        preds += gb.learning_rate * tree.predict(X)
    return preds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_PR6.json", help="JSON artifact path")
    parser.add_argument("--trees", type=int, default=750, help="GB n_estimators")
    parser.add_argument("--depth", type=int, default=10, help="GB max_depth")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument(
        "--fit-repeats",
        type=int,
        default=3,
        help="interleaved exact/hist cold-fit repeats (best-of)",
    )
    parser.add_argument("--dataset", default="aurora", help="dataset name (Table 1)")
    args = parser.parse_args(argv)

    from repro.data.datasets import build_dataset
    from repro.ml.gradient_boosting import GradientBoostingRegressor
    from repro.ml.metrics import r2_score
    from repro.parallel.cache import clear_caches

    dataset = build_dataset(args.dataset, seed=0)
    X_train, y_train = dataset.X_train, dataset.y_train
    X_test = np.ascontiguousarray(dataset.X_test)
    X_pool = np.ascontiguousarray(np.vstack([dataset.X_train, dataset.X_test]))

    def make_model(tree_method="exact"):
        return GradientBoostingRegressor(
            n_estimators=args.trees,
            max_depth=args.depth,
            random_state=0,
            tree_method=tree_method,
        )

    # ------------------------------------------------------------------ fit
    # Interleave the engines: one cold exact fit then one cold hist fit per
    # repeat, so box-level noise (CI neighbours, thermal swings) degrades
    # both the same way instead of biasing whichever ran in the bad window.
    fit_times: dict[str, list[float]] = {"exact": [], "hist": []}
    models: dict[str, GradientBoostingRegressor] = {}
    for _ in range(args.fit_repeats):
        for method in ("exact", "hist"):
            clear_caches()
            start = time.perf_counter()
            models[method] = make_model(method).fit(X_train, y_train)
            fit_times[method].append(time.perf_counter() - start)
    gb = models["exact"]
    fit_cold_s = fit_times["exact"][0]
    start = time.perf_counter()
    make_model().fit(X_train, y_train)  # presort cache now hot
    fit_warm_s = time.perf_counter() - start

    exact_best = min(fit_times["exact"])
    hist_best = min(fit_times["hist"])
    fit_engines = {
        "exact": {"cold_s": fit_times["exact"], "best_s": exact_best},
        "hist": {"cold_s": fit_times["hist"], "best_s": hist_best},
        "hist_speedup": exact_best / hist_best,
        "train_r2": {
            method: float(r2_score(y_train, model.predict(X_train)))
            for method, model in models.items()
        },
        "test_r2": {
            method: float(r2_score(dataset.y_test, model.predict(X_test)))
            for method, model in models.items()
        },
    }

    # ------------------------------------------------------------------ predict
    # Cold packed predict pays the one-off arena + traversal-table build.
    start = time.perf_counter()
    packed_test_cold = gb.predict(X_test)
    predict_packed_cold_s = time.perf_counter() - start

    object_test = _object_path_predict(gb, X_test)
    if not np.array_equal(packed_test_cold, object_test):
        raise SystemExit("parity violation: packed != per-tree object path")
    if not np.array_equal(gb.predict(X_pool), _object_path_predict(gb, X_pool)):
        raise SystemExit("parity violation: packed != per-tree object path (pool)")

    predict = {}
    for name, X in [("test_split", X_test), ("full_pool", X_pool)]:
        object_s = _best_of(lambda X=X: _object_path_predict(gb, X), args.repeats)
        packed_s = _best_of(lambda X=X: gb.predict(X), args.repeats)
        predict[name] = {
            "n_samples": int(X.shape[0]),
            "object_path_s": object_s,
            "packed_s": packed_s,
            "speedup": object_s / packed_s,
        }

    # ------------------------------------------------------------------ payloads
    packed_blob = len(pickle.dumps(gb, protocol=pickle.HIGHEST_PROTOCOL))
    object_state = dict(gb.__dict__)
    object_state.pop("_packed", None)
    object_blob = len(pickle.dumps(object_state, protocol=pickle.HIGHEST_PROTOCOL))

    report = {
        "benchmark": "histogram-binned GB fit engine (PR 6)",
        "config": {
            "dataset": args.dataset,
            "n_estimators": args.trees,
            "max_depth": args.depth,
            "repeats": args.repeats,
            "fit_repeats": args.fit_repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "fit": {"cold_s": fit_cold_s, "warm_s": fit_warm_s, "engines": fit_engines},
        "predict": predict,
        "predict_packed_cold_s": predict_packed_cold_s,
        "pickle_payload_bytes": {
            "packed": packed_blob,
            "object_graph": object_blob,
            "ratio": packed_blob / object_blob,
        },
        "parity": "byte-identical (asserted on test split and full pool)",
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    deploy = predict["test_split"]
    print(
        f"fit exact {exact_best:.2f}s -> hist {hist_best:.2f}s "
        f"({fit_engines['hist_speedup']:.2f}x, best of {args.fit_repeats} interleaved) | "
        f"predict[test_split] object {deploy['object_path_s']:.4f}s -> "
        f"packed {deploy['packed_s']:.4f}s ({deploy['speedup']:.2f}x) | "
        f"payload {packed_blob}/{object_blob} bytes "
        f"({report['pickle_payload_bytes']['ratio']:.2f}x)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
