"""Perf-trajectory artifact for the packed ensemble prediction engine.

Times the paper's deployed Gradient Boosting configuration (750 trees,
depth 10 by default) end to end — fit cold (empty presort cache) vs fit warm
(cache hot), and predict via the historical per-tree object path vs the
packed flat-array engine (cold = first call, including the one-off
traversal-table build; warm = steady state) — and writes the measurements to
a JSON artifact (``BENCH_PR4.json`` by convention).  Bit-parity between the
two predict paths is asserted before anything is recorded.

CI runs this from the memo-service job and uploads the JSON, building a
perf trajectory across PRs; run it locally with::

    PYTHONPATH=src python benchmarks/perf_trajectory.py --output BENCH_PR4.json

The ``--trees/--depth/--repeats`` flags shrink the experiment for quick
smoke runs (e.g. ``--trees 50 --repeats 1``).
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import sys
import time

import numpy as np


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _object_path_predict(gb, X: np.ndarray) -> np.ndarray:
    """The historical per-tree prediction loop (the pre-packed code path)."""
    preds = np.full(X.shape[0], gb.init_)
    for tree in gb.estimators_:
        preds += gb.learning_rate * tree.predict(X)
    return preds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_PR4.json", help="JSON artifact path")
    parser.add_argument("--trees", type=int, default=750, help="GB n_estimators")
    parser.add_argument("--depth", type=int, default=10, help="GB max_depth")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument("--dataset", default="aurora", help="dataset name (Table 1)")
    args = parser.parse_args(argv)

    from repro.data.datasets import build_dataset
    from repro.ml.gradient_boosting import GradientBoostingRegressor
    from repro.parallel.cache import clear_caches

    dataset = build_dataset(args.dataset, seed=0)
    X_train, y_train = dataset.X_train, dataset.y_train
    X_test = np.ascontiguousarray(dataset.X_test)
    X_pool = np.ascontiguousarray(np.vstack([dataset.X_train, dataset.X_test]))

    def make_model():
        return GradientBoostingRegressor(
            n_estimators=args.trees, max_depth=args.depth, random_state=0
        )

    # ------------------------------------------------------------------ fit
    clear_caches()
    start = time.perf_counter()
    gb = make_model().fit(X_train, y_train)
    fit_cold_s = time.perf_counter() - start
    start = time.perf_counter()
    make_model().fit(X_train, y_train)  # presort cache now hot
    fit_warm_s = time.perf_counter() - start

    # ------------------------------------------------------------------ predict
    # Cold packed predict pays the one-off arena + traversal-table build.
    start = time.perf_counter()
    packed_test_cold = gb.predict(X_test)
    predict_packed_cold_s = time.perf_counter() - start

    object_test = _object_path_predict(gb, X_test)
    if not np.array_equal(packed_test_cold, object_test):
        raise SystemExit("parity violation: packed != per-tree object path")
    if not np.array_equal(gb.predict(X_pool), _object_path_predict(gb, X_pool)):
        raise SystemExit("parity violation: packed != per-tree object path (pool)")

    predict = {}
    for name, X in [("test_split", X_test), ("full_pool", X_pool)]:
        object_s = _best_of(lambda X=X: _object_path_predict(gb, X), args.repeats)
        packed_s = _best_of(lambda X=X: gb.predict(X), args.repeats)
        predict[name] = {
            "n_samples": int(X.shape[0]),
            "object_path_s": object_s,
            "packed_s": packed_s,
            "speedup": object_s / packed_s,
        }

    # ------------------------------------------------------------------ payloads
    packed_blob = len(pickle.dumps(gb, protocol=pickle.HIGHEST_PROTOCOL))
    object_state = dict(gb.__dict__)
    object_state.pop("_packed", None)
    object_blob = len(pickle.dumps(object_state, protocol=pickle.HIGHEST_PROTOCOL))

    report = {
        "benchmark": "packed ensemble prediction engine (PR 4)",
        "config": {
            "dataset": args.dataset,
            "n_estimators": args.trees,
            "max_depth": args.depth,
            "repeats": args.repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "fit": {"cold_s": fit_cold_s, "warm_s": fit_warm_s},
        "predict": predict,
        "predict_packed_cold_s": predict_packed_cold_s,
        "pickle_payload_bytes": {
            "packed": packed_blob,
            "object_graph": object_blob,
            "ratio": packed_blob / object_blob,
        },
        "parity": "byte-identical (asserted on test split and full pool)",
    }
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    deploy = predict["test_split"]
    print(
        f"fit cold {fit_cold_s:.2f}s / warm {fit_warm_s:.2f}s | "
        f"predict[test_split] object {deploy['object_path_s']:.4f}s -> "
        f"packed {deploy['packed_s']:.4f}s ({deploy['speedup']:.2f}x) | "
        f"payload {packed_blob}/{object_blob} bytes "
        f"({report['pickle_payload_bytes']['ratio']:.2f}x)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
