#!/usr/bin/env python
"""Quickstart: train a runtime model and ask both user questions.

This script walks through the full pipeline of the paper in a couple of
minutes on a laptop:

1. generate a performance dataset for ALCF Aurora (the simulator stands in
   for the paper's measured ExaChem/TAMM CCSD runs);
2. train the Gradient Boosting runtime model on the training split;
3. evaluate it on the held-out split (R², MAE, MAPE — the paper's metrics);
4. answer the Shortest-Time Question and the Budget Question for a molecule
   the user is about to run.

Run with::

    python examples/quickstart.py
"""

from repro.core.advisor import ResourceAdvisor
from repro.core.reporting import format_metrics
from repro.data.datasets import build_dataset


def main() -> None:
    # The problem the user wants to run: 99 occupied and 718 virtual orbitals.
    n_occupied, n_virtual = 99, 718

    print("Generating the Aurora CCSD performance dataset (paper size: 2329 runs)...")
    dataset = build_dataset("aurora", seed=0)
    print(f"  {dataset.n_rows} experiments, {dataset.n_train} train / {dataset.n_test} test")

    print("Training the Gradient Boosting runtime model...")
    advisor = ResourceAdvisor.from_dataset(dataset, preset="fast")
    report = advisor.estimator.evaluate(dataset.X_test, dataset.y_test)
    print("  " + format_metrics(report, title="held-out accuracy"))

    print(f"\nQuestion 1 (STQ): fastest configuration for (O={n_occupied}, V={n_virtual})?")
    stq = advisor.shortest_time(n_occupied, n_virtual)
    print(
        f"  -> use {stq.n_nodes} nodes with tile size {stq.tile_size}: "
        f"predicted {stq.predicted_runtime_s:.1f} s per CCSD iteration "
        f"({stq.predicted_node_hours:.2f} node-hours)"
    )

    print(f"\nQuestion 2 (BQ): cheapest configuration for (O={n_occupied}, V={n_virtual})?")
    bq = advisor.budget(n_occupied, n_virtual)
    print(
        f"  -> use {bq.n_nodes} nodes with tile size {bq.tile_size}: "
        f"predicted {bq.predicted_node_hours:.2f} node-hours "
        f"({bq.predicted_runtime_s:.1f} s per iteration)"
    )

    print(
        "\nNote how the shortest-time answer uses many more nodes than the "
        "budget answer — the paper's key observation about user priorities."
    )


if __name__ == "__main__":
    main()
