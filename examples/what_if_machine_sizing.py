#!/usr/bin/env python
"""What-if analysis straight from the performance simulator.

Not every question needs a trained ML model: the TAMM-like runtime simulator
can be queried directly to explore how a CCSD iteration's wall time and cost
decompose across compute, communication, load imbalance and fixed overheads,
and how the picture changes with the allocation size and tile size.  This is
the kind of analysis the paper's measured sweeps encode implicitly.

Run with::

    python examples/what_if_machine_sizing.py
"""

from repro.chem import ProblemSize
from repro.core.reporting import format_table
from repro.machines import AURORA, FRONTIER
from repro.tamm import TammRuntimeSimulator


def main() -> None:
    problem = ProblemSize(116, 840)

    for machine in (AURORA, FRONTIER):
        simulator = TammRuntimeSimulator(machine)
        min_nodes = simulator.min_nodes(problem)
        print(f"\n=== {machine.name.capitalize()} — CCSD iteration for (O=116, V=840) ===")
        print(f"Memory-feasible allocations start at {min_nodes} nodes.")

        rows = []
        for nodes in (10, 40, 100, 300, 700):
            if nodes < min_nodes:
                continue
            b = simulator.simulate_iteration(problem, nodes, 80, rng=0, apply_noise=False)
            rows.append(
                [
                    nodes,
                    b.total_time,
                    b.compute_time,
                    b.comm_time,
                    b.imbalance_time,
                    b.fixed_time,
                    b.node_hours,
                ]
            )
        print(
            format_table(
                ["Nodes", "Time (s)", "Compute", "Comm", "Imbalance", "Fixed", "Node-hours"],
                rows,
                title="Strong scaling at tile size 80:",
            )
        )

        rows = []
        for tile in (40, 60, 80, 100, 120, 140):
            b = simulator.simulate_iteration(problem, 40, tile, rng=0, apply_noise=False)
            rows.append([tile, b.total_time, b.n_tasks])
        print(format_table(["Tile", "Time (s)", "Tasks"], rows, title="Tile-size sweep at 40 nodes:"))

    print(
        "\nTakeaways: runtimes stop improving (and eventually worsen) as nodes grow, "
        "tile size has an interior sweet spot, and node-hours always favour small "
        "allocations — the structure the paper's ML models learn from measured data."
    )


if __name__ == "__main__":
    main()
