#!/usr/bin/env python
"""Serving quickstart: keep a fitted model hot and answer queries online.

The batch workflow (``examples/quickstart.py``) pays a dataset build and a
model fit for every question.  The serving layer pays them **once**:

1. fit the runtime model and publish it to a content-addressed model
   registry (restarts warm-load it in milliseconds instead of refitting);
2. start an in-process serve server hosting the fitted advisor — exactly
   what ``repro-chem serve`` runs as a standalone process;
3. fire predict and shortest-time/budget queries at it from concurrent
   clients — micro-batching coalesces them into single packed traversals,
   and every answer is byte-identical to calling the model locally;
4. read the server's statistics (requests, coalescing, registry activity).

Run with::

    python examples/serving_quickstart.py

The equivalent operational setup on two shells::

    repro-chem serve --registry ~/.cache/repro-models   # shell 1
    repro-chem query stq -O 99 -V 718                   # shell 2
    repro-chem query predict --features 99,718,40,80
    repro-chem query stats
"""

import tempfile
import threading

import numpy as np

from repro.core.advisor import ResourceAdvisor
from repro.data.datasets import build_dataset
from repro.serve import ModelRegistry, ServeClient, ServeServer


def main() -> None:
    # ------------------------------------------------------------------ fit once
    print("Fitting the Aurora runtime model (fast preset)...")
    dataset = build_dataset("aurora", seed=0, n_total=600)
    advisor = ResourceAdvisor.from_dataset(dataset, preset="fast")

    # ------------------------------------------------------------ publish + load
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        digest = registry.publish(advisor, name="aurora-fast", meta={"seed": 0})
        print(f"Published to the registry as aurora-fast ({digest[:12]}...)")

        # A later server start skips the fit: warm-load by name (arenas and
        # traversal tables are built before the first request).
        served_model = registry.load("aurora-fast")

        # ------------------------------------------------------------- serve it
        with ServeServer(served_model, registry=registry) as server:
            print(f"Serving on {server.url}\n")

            client = ServeClient(server.url)
            X = np.ascontiguousarray(dataset.X_test[:4])
            served = client.predict(X)
            local = advisor.estimator.predict(X)
            print("Served predictions :", np.round(served, 3))
            print("Local predictions  :", np.round(local, 3))
            print("Byte-identical     :", bool(np.array_equal(served, local)))

            answer = client.ask("stq", 99, 718)
            print(
                f"\nSTQ for (O=99, V=718): nodes={answer['n_nodes']} "
                f"tile={answer['tile_size']} "
                f"runtime={answer['predicted_runtime_s']:.1f}s"
            )

            # -------------------------------------- concurrent, micro-batched
            print("\nFiring 4 concurrent clients (micro-batching coalesces them)...")

            def worker(offset: int) -> None:
                c = ServeClient(server.url)
                try:
                    for i in range(offset, len(dataset.X_test), 4):
                        c.predict(dataset.X_test[i])
                finally:
                    c.close()

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            stats = client.stats()
            batcher = stats["models"]["default"]["batcher"]
            print(
                f"Server stats: {stats['requests']['predict']} predict requests, "
                f"{batcher['batches']} packed traversals "
                f"({batcher['requests_per_batch_mean']:.1f} requests/traversal, "
                f"largest coalition {batcher['batched_requests_max']})"
            )
            print(f"Registry stats: {stats['registry']}")
            client.close()


if __name__ == "__main__":
    main()
