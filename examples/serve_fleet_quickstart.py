#!/usr/bin/env python
"""Serve-fleet quickstart: multi-model routing, failover and admission control.

A single serve process (``examples/serving_quickstart.py``) is one machine
and one model.  The fleet layer (PR 8) scales both axes with zero new
dependencies:

1. several replicas share one model **registry**; each request names a model
   *alias* and the server lazily warm-loads it, keeping at most
   ``max_models`` resident (LRU eviction, digest-verified reloads);
2. replicas on one host share a single packed-arena copy per model through
   ``multiprocessing.shared_memory`` — N processes, one set of tree arrays;
3. a multi-URL :class:`ServeClient` consistent-hashes requests across the
   replicas and fails over when one dies: a dead replica degrades capacity,
   not availability, and every completed answer stays byte-identical to the
   local estimator no matter which replica produced it;
4. a bounded in-flight budget (``max_inflight``) sheds overload with a
   distinct retryable :class:`ServeOverloadedError` instead of queueing
   unboundedly — the fleet client simply routes around a saturated replica.

Run with::

    python examples/serve_fleet_quickstart.py

The equivalent operational setup on three shells (one per "machine")::

    # shells 1+2 — two replicas sharing one registry (and, on the same
    # host, one shared arena: the second replica attaches, not copies)
    repro-chem serve --registry /srv/models --port 7601 --max-inflight 64
    repro-chem serve --registry /srv/models --port 7602 --max-inflight 64

    # shell 3 — fleet-routed queries (any replica may answer)
    repro-chem query predict --url serve://host1:7601 --url serve://host2:7602 \\
        --features 99,718,40,80
    repro-chem query stats --url serve://host1:7601
"""

import tempfile
import threading

import numpy as np

from repro.core.advisor import ResourceAdvisor
from repro.data.datasets import build_dataset
from repro.serve import (
    ModelRegistry,
    ServeClient,
    ServeOverloadedError,
    ServeServer,
)


def main() -> None:
    # ---------------------------------------------------------- publish two models
    print("Fitting and publishing two model aliases...")
    aurora = build_dataset("aurora", seed=0, n_total=400)
    frontier = build_dataset("frontier", seed=0, n_total=400)
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        registry.publish(
            ResourceAdvisor.from_dataset(aurora, preset="fast"), name="aurora"
        )
        registry.publish(
            ResourceAdvisor.from_dataset(frontier, preset="fast"), name="frontier"
        )
        local = {
            "aurora": registry.load("aurora").estimator.predict(aurora.X_test),
            "frontier": registry.load("frontier").estimator.predict(frontier.X_test),
        }

        # ------------------------------------------------- two registry replicas
        # Neither hosts a model statically: aliases load on first use, and at
        # most two stay resident per replica (a third alias would evict the
        # least recently used one; it reloads transparently when asked again).
        with ServeServer({}, registry=registry, max_models=2) as replica_a, \
                ServeServer({}, registry=registry, max_models=2) as replica_b:
            urls = [replica_a.url, replica_b.url]
            print(f"Fleet: {urls[0]} + {urls[1]}\n")

            # ------------------------------------------------ fleet-routed parity
            client = ServeClient(urls)
            for alias, dataset in (("aurora", aurora), ("frontier", frontier)):
                served = client.predict(dataset.X_test, model=alias)
                assert served.tobytes() == local[alias].tobytes()
                print(f"{alias:>8}: {len(served)} fleet predictions, byte-identical")

            # ------------------------------------------------------ kill a replica
            print("\nShutting down replica A mid-workload (failover, not failure)...")
            replica_a.shutdown()
            for alias, dataset in (("aurora", aurora), ("frontier", frontier)):
                served = client.predict(dataset.X_test, model=alias)
                assert served.tobytes() == local[alias].tobytes()
            stats = client.fleet_stats()
            print(
                f"Still byte-identical; client failed over "
                f"{stats['failovers']} request(s) to the survivor."
            )
            client.close()

            # ------------------------------------------------------ admission control
            print("\nOverload: a replica with a one-request budget sheds, never hangs.")
            gate, release = threading.Event(), threading.Event()

            class SlowModel:
                n_features_in_ = 4

                def predict(self, X):
                    gate.set()
                    release.wait(timeout=10.0)
                    return np.zeros(len(np.atleast_2d(X)))

            with ServeServer(
                SlowModel(), micro_batch=False, max_inflight=1
            ) as tiny:
                blocker = ServeClient(tiny.url)
                prober = ServeClient(tiny.url)
                thread = threading.Thread(
                    target=lambda: blocker.predict(np.zeros(4)), daemon=True
                )
                thread.start()
                gate.wait(timeout=5.0)
                try:
                    prober.predict(np.zeros(4))
                except ServeOverloadedError as exc:
                    print(f"Shed with the retryable flavour: {exc}")
                release.set()
                thread.join(timeout=5.0)
                shed = tiny.stats()["admission"]["requests_shed"]
                print(f"Server counted requests_shed={shed}")
                blocker.close()
                prober.close()


if __name__ == "__main__":
    main()
