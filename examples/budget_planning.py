#!/usr/bin/env python
"""Budget Question planning: minimise node-hours for an allocation request.

A user with a fixed node-hour allocation wants to know how to run a series of
CCSD calculations as cheaply as possible, and how much a "run it as fast as
possible" habit would cost instead.  This reproduces the comparison behind
Tables 5/6 of the paper and quantifies the node-hour savings of answering the
Budget Question rather than the Shortest-Time Question.

Run with::

    python examples/budget_planning.py [aurora|frontier]
"""

import sys

from repro.core.advisor import ResourceAdvisor
from repro.core.reporting import format_table
from repro.data.datasets import build_dataset


def main(machine: str = "aurora") -> None:
    # The user's campaign: three molecular systems of increasing size.
    campaign = [(85, 698), (134, 951), (204, 969)]

    print(f"Building the {machine} dataset and training the runtime model...")
    dataset = build_dataset(machine, seed=0)
    advisor = ResourceAdvisor.from_dataset(dataset, preset="fast")

    rows = []
    total_fast, total_cheap = 0.0, 0.0
    for o, v in campaign:
        stq = advisor.shortest_time(o, v)
        bq = advisor.budget(o, v)
        total_fast += stq.predicted_node_hours
        total_cheap += bq.predicted_node_hours
        rows.append(
            [
                f"(O={o}, V={v})",
                f"{stq.n_nodes}/{stq.tile_size}",
                stq.predicted_runtime_s,
                stq.predicted_node_hours,
                f"{bq.n_nodes}/{bq.tile_size}",
                bq.predicted_runtime_s,
                bq.predicted_node_hours,
            ]
        )

    print("\nPer-system recommendations (per CCSD iteration):")
    print(
        format_table(
            [
                "System",
                "STQ nodes/tile",
                "STQ time (s)",
                "STQ node-h",
                "BQ nodes/tile",
                "BQ time (s)",
                "BQ node-h",
            ],
            rows,
        )
    )

    savings = 100.0 * (1.0 - total_cheap / total_fast)
    print(
        f"\nCampaign cost per iteration: shortest-time plan = {total_fast:.2f} node-hours, "
        f"budget plan = {total_cheap:.2f} node-hours ({savings:.0f}% cheaper)."
    )
    print(
        "The budget plan trades longer wall times for far fewer nodes — exactly the "
        "behaviour contrast the paper reports between Tables 3/4 and 5/6."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "aurora")
