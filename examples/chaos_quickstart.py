#!/usr/bin/env python
"""Chaos quickstart: the resilience layer under a deterministic fault storm.

Every wire client in the stack (``memo://``, ``serve://``, ``cluster://``)
shares one resilience engine (``repro.parallel.resilience``, PR 9):

1. **retry budgets + jittered backoff** — every retry loop derives from an
   immutable :class:`RetryPolicy` (capped exponential delays, equal jitter,
   per-operation budget, overall deadline).  Seed the jitter
   (``retry_seed=`` or ``REPRO_RETRY_SEED``) and the whole retry sequence
   replays identically;
2. **health-aware routing** — a :class:`HealthTracker` folds failures into
   a per-endpoint EWMA driving a closed/open/half-open circuit.  A dead
   replica leaves the consistent-hash ring while its circuit is open and
   re-enters on a successful half-open probe.  Overloads *never* trip the
   circuit: a shedding replica is a healthy replica (shed-vs-dead);
3. **pending-depth shedding** — ``repro-chem serve --max-pending N`` bounds
   the micro-batcher queue, answering the retryable ``overloaded`` flavour
   before a request ever queues.

The proof harness is :class:`repro.testing.FaultWire`: a frame-aware TCP
proxy whose drops / stalls / truncations / resets / garbles are a pure
function of ``(seed, connection, frame)`` — the same seed replays the same
storm, byte for byte.  This script drives a 2-replica fleet through two
lossy proxies and shows the headline invariant: **faults cost retries and
failovers, never a wrong byte**.

Run with::

    python examples/chaos_quickstart.py

The equivalent operational setup (the CI ``chaos`` job scripts this)::

    repro-chem serve --port 7601 --max-pending 256   # real replicas
    repro-chem serve --port 7602 --max-pending 256
    python -m repro.testing.faultwire --listen 127.0.0.1:7611 \\
        --upstream 127.0.0.1:7601 --seed 1234 --drop 0.05 --garble 0.05
    repro-chem query predict --url serve://127.0.0.1:7611 --retries 8 \\
        --features 99,718,40,80
"""

import json

import numpy as np

from repro.core.advisor import ResourceAdvisor
from repro.data.datasets import build_dataset
from repro.serve import ServeClient, ServeServer
from repro.testing import FaultSchedule, FaultWire


def main() -> None:
    # ------------------------------------------------------------- fit one model
    print("Fitting a small advisor...")
    dataset = build_dataset("aurora", seed=0, n_total=400)
    advisor = ResourceAdvisor.from_dataset(dataset, preset="fast")
    local = advisor.estimator.predict(dataset.X_test)

    # ------------------------------------------- two replicas, two lossy proxies
    with ServeServer(advisor) as replica_a, ServeServer(advisor) as replica_b:
        storm = dict(drop=0.06, garble=0.06, delay=0.05, delay_s=0.05)
        with FaultWire(
            (replica_a.host, replica_a.port), FaultSchedule("chaos-a", **storm)
        ) as proxy_a, FaultWire(
            (replica_b.host, replica_b.port), FaultSchedule("chaos-b", **storm)
        ) as proxy_b:
            urls = [proxy_a.url("serve"), proxy_b.url("serve")]
            print(f"Fleet behind fault proxies: {urls[0]} + {urls[1]}")
            print(f"Storm per response frame: {storm}\n")

            # A seeded client: the retry/backoff sequence is reproducible.
            client = ServeClient(
                urls,
                timeout=5.0,
                retry_delay=0.05,
                retries=8,
                deadline=30.0,
                retry_seed="chaos-quickstart",
            )
            rounds, n = 10, len(dataset.X_test)
            for _ in range(rounds):
                served = client.predict(dataset.X_test)
                # The headline invariant: lossy wire, byte-identical answers.
                assert served.tobytes() == local.tobytes()
            print(
                f"{rounds * n}/{rounds * n} predictions byte-identical "
                f"through the storm."
            )

            stats = client.fleet_stats()
            print(
                f"Client absorbed it: failovers={stats['failovers']}, "
                f"retry_rounds={stats['retry_rounds']}, "
                f"overloaded={stats['overloaded']}"
            )
            print("Per-replica circuits (the operator surface):")
            print(json.dumps(stats["replicas"], indent=2))
            injected = {
                "proxy_a": proxy_a.stats()["by_action"],
                "proxy_b": proxy_b.stats()["by_action"],
            }
            print(f"Faults actually injected: {json.dumps(injected)}")
            client.close()

    # ----------------------------------------------------- dead, not just lossy
    print("\nHard-dead replica: every response frame is a TCP reset...")
    with ServeServer(advisor) as healthy, ServeServer(advisor) as victim:
        with FaultWire(
            (victim.host, victim.port), FaultSchedule(0, reset=1.0)
        ) as killer:
            client = ServeClient(
                [healthy.url, killer.url("serve")],
                timeout=5.0,
                retry_delay=5.0,
                retries=4,
                retry_seed="dead-replica",
            )
            for row in np.asarray(dataset.X_test)[:8]:
                client.predict(row)
            dead = client.fleet_stats()["replicas"][killer.url("serve")]
            print(
                f"Dead replica circuit: state={dead['state']!r}, "
                f"trips={dead['trips']}, "
                f"open for another {dead['open_remaining_s']}s — "
                f"it left the ring; the healthy replica serves everything."
            )
            client.close()


if __name__ == "__main__":
    main()
