#!/usr/bin/env python
"""Observability quickstart: traces, metrics and telemetry (PR 10).

``repro.obs`` is the zero-dependency observability layer every wire
service speaks:

1. **tracing** — every entry point opens a span; the trace context rides
   an optional envelope on all three wire protocols (version-negotiated,
   so old peers keep working), and each server's frame span parents on
   the client span that sent the request.  Spans carry per-hop timings:
   client wait, queue/coalesce wait, batch traversal, backoff sleeps.
   Enable with ``--trace-dir DIR`` / ``REPRO_TRACE_DIR``; **tracing on vs
   off changes no answered byte**, and ``REPRO_TRACE_SEED`` makes the
   trace ids themselves replayable;
2. **metrics** — a typed Counter/Gauge/Histogram registry with fixed
   log-spaced buckets, so p50/p95/p99 derive server-side from bucket
   counts; the legacy ``stats()`` dicts are views over the same
   instruments;
3. **telemetry** — every framed service answers one opcode with one
   versioned JSON snapshot; ``repro-chem query fleet-stats`` and
   ``repro-chem trace show/top`` consume it from outside the serving
   process.

Run with::

    python examples/observability_quickstart.py

The equivalent operational setup::

    repro-chem serve --port 7601 --trace-dir /tmp/traces --slow-ms 50
    repro-chem query fleet-stats --url serve://127.0.0.1:7601
    repro-chem trace top --trace-dir /tmp/traces -n 3
    repro-chem trace show --trace-dir /tmp/traces --url serve://127.0.0.1:7601
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.cli import main as repro_cli
from repro.core.advisor import ResourceAdvisor
from repro.data.datasets import build_dataset
from repro.obs.trace import configure_tracing, recent_spans, span
from repro.serve import ServeClient, ServeServer


def main() -> None:
    # ------------------------------------------------------------- fit one model
    print("Fitting a small advisor...")
    dataset = build_dataset("aurora", seed=0, n_total=400)
    advisor = ResourceAdvisor.from_dataset(dataset, preset="fast")
    X = np.ascontiguousarray(dataset.X_test[:16])

    trace_dir = Path(tempfile.mkdtemp(prefix="repro-traces-"))

    # Parity first: answers with tracing off...
    with ServeServer(advisor) as replica:
        client = ServeClient(replica.url)
        baseline = client.predict(X)
        client.close()

    # ...then everything below runs traced, and must match byte for byte.
    configure_tracing(trace_dir=str(trace_dir))

    # ------------------------------------- a 2-replica fleet, traced end to end
    with ServeServer(advisor, slow_ms=0.01) as replica_a, ServeServer(
        advisor
    ) as replica_b:
        fleet = ServeClient([replica_a.url, replica_b.url])
        with span("quickstart.workload"):
            traced = fleet.predict(X)
            for row in X[:4]:
                fleet.predict(np.ascontiguousarray(row[None, :]))
        assert traced.tobytes() == baseline.tobytes()
        print("parity: traced prediction is byte-identical to untraced\n")

        # ---------------------------------------------- scrape fleet telemetry
        print("=== fleet telemetry (one snapshot per replica) ===")
        docs = fleet.fleet_telemetry()
        for url, doc in docs.items():
            counters = doc["metrics"]["counters"]
            hist = doc["metrics"]["histograms"].get("wire.frame_seconds", {})
            print(
                f"{url}: schema_version={doc['schema_version']} "
                f"predict={counters.get('serve.requests{op=predict}', 0)} "
                f"p50={1000.0 * hist.get('p50', 0.0):.3f}ms "
                f"p99={1000.0 * hist.get('p99', 0.0):.3f}ms"
            )
        fleet.close()

        # -------------------------------------- the CLI verb, same wire path
        print("\n=== repro-chem query fleet-stats (first replica) ===")
        repro_cli(["query", "fleet-stats", "--url", replica_a.url])

    # --------------------------------------------------------- trace the hops
    print("\n=== slowest traces (repro-chem trace top) ===")
    repro_cli(["trace", "top", "--trace-dir", str(trace_dir), "-n", "3"])

    print("\n=== span tree of the slowest trace (repro-chem trace show) ===")
    repro_cli(["trace", "show", "--trace-dir", str(trace_dir)])

    workload = [s for s in recent_spans(500) if s["name"] == "quickstart.workload"]
    print(
        f"\nring recorded {len(recent_spans(500))} spans in-process; "
        f"workload root trace id: {workload[0]['trace_id']}"
    )
    print(f"JSONL sinks under {trace_dir}:")
    for path in sorted(trace_dir.glob("trace-*.jsonl")):
        print(f"  {path.name}: {len(path.read_text().splitlines())} spans")


if __name__ == "__main__":
    main()
