#!/usr/bin/env python
"""Active-learning campaign for a new machine with no historical data.

Scenario (Section 3.4 of the paper): a user targets a machine for which no
CCSD performance data exists, and every training experiment costs real
node-hours.  Active learning chooses which configurations to run next so the
runtime model becomes accurate with as few experiments as possible.

The script compares random sampling (RS), Gaussian-process uncertainty
sampling (US, Algorithm 1) and Gradient-Boosting query-by-committee (QC,
Algorithm 2) on the Frontier pool with the shortest-time goal, and reports
how many experiments each needs to reach a given MAPE.

Run with::

    python examples/active_learning_campaign.py
"""

from repro.core.active_learning import (
    ActiveLearningConfig,
    QueryByCommittee,
    RandomSampling,
    UncertaintySampling,
    run_active_learning,
)
from repro.core.reporting import format_active_learning_curves
from repro.data.datasets import build_dataset
from repro.ml.gradient_boosting import GradientBoostingRegressor


def main() -> None:
    print("Building the Frontier dataset (the pool of runnable experiments)...")
    dataset = build_dataset("frontier", seed=0)

    config = ActiveLearningConfig(
        n_initial=50, query_size=100, n_queries=6, random_state=0, goal="stq"
    )
    committee_member = GradientBoostingRegressor(
        n_estimators=60, max_depth=6, subsample=0.8, random_state=0
    )
    strategies = [
        RandomSampling(model=committee_member),
        UncertaintySampling(reoptimize_every=5),
        QueryByCommittee(n_committee=5, base_model=committee_member),
    ]

    results = []
    for strategy in strategies:
        print(f"Running the {strategy.name} campaign...")
        results.append(
            run_active_learning(
                dataset.X_train,
                dataset.y_train,
                strategy,
                config,
                X_test=dataset.X_test,
                y_test=dataset.y_test,
            )
        )

    print()
    print(format_active_learning_curves(results, metric="mape"))
    print()
    print(format_active_learning_curves(results, metric="mape", use_goal=True))

    print("\nExperiments needed to reach a pool MAPE of 0.2:")
    for result in results:
        reached = result.samples_to_reach_mape(0.2)
        print(f"  {result.strategy}: {reached if reached is not None else 'not reached'}")
    print(
        "\nThe informed strategies reach useful accuracy with a fraction of the "
        f"{dataset.n_train}-experiment pool, as the paper reports (~25-35% of the dataset)."
    )


if __name__ == "__main__":
    main()
