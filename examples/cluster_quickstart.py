#!/usr/bin/env python
"""Cluster quickstart: fan the model-comparison sweep over worker agents.

``ParallelMap`` normally fans out over a local process pool.  The cluster
executor fans the *same* task batches out over machines instead, with zero
new dependencies — tasks ride the repo's own length-prefixed wire protocol:

1. the run hosts a ``ClusterDispatcher`` (bound at ``REPRO_CLUSTER_URL``);
2. worker agents — ``repro-chem cluster-work`` processes on any machine
   that can reach the dispatcher — dial in and pull tasks;
3. ``REPRO_EXECUTOR=cluster`` routes every existing parallel call site
   (searches, CV, forests, committees, ``run_model_comparison``) through
   the fleet without touching them;
4. results come back in task order, worker exceptions propagate unchanged,
   a worker killed mid-sweep is reaped by heartbeat silence and its tasks
   re-dispatched, and a fleet with nobody home degrades to the
   bit-identical serial path.

This script demonstrates the whole contract in one process (workers on
threads stand in for remote agents).  Run with::

    python examples/cluster_quickstart.py

The equivalent operational setup on three shells (one per "machine")::

    # shell 1 — shared memo store for the whole fleet
    repro-chem memo-serve --memo-dir /tmp/memo --port 7501

    # shell 2 — a worker agent (repeat on as many machines as you like)
    repro-chem cluster-work --dispatcher cluster://runhost:7701 \\
        --memo-dir memo://memohost:7501

    # shell 3 — the run itself: binds the dispatcher, fans out the sweep
    REPRO_EXECUTOR=cluster REPRO_CLUSTER_URL=cluster://0.0.0.0:7701 \\
        repro-chem compare-models --jobs 8 --memo-dir memo://memohost:7501
"""

import os
import threading

from repro.core.hyperopt import run_model_comparison
from repro.core.reporting import format_model_comparison
from repro.data.datasets import build_dataset
from repro.parallel.cluster import ClusterWorker, ensure_dispatcher, shutdown_dispatchers
from repro.parallel.executors import ExecutorUnavailableError


def main() -> None:
    # -------------------------------------------------------- host a dispatcher
    # Port 0 binds an ephemeral port; a real run would pin one (say 7701)
    # via REPRO_CLUSTER_URL so workers on other machines know where to dial.
    dispatcher = ensure_dispatcher("cluster://127.0.0.1:0")
    print(f"Dispatcher listening on {dispatcher.url}")

    # ---------------------------------------------------------- start "agents"
    # Each of these threads runs the exact loop behind `repro-chem
    # cluster-work --dispatcher <url>`; on real machines they would be
    # separate processes sharing a memo:// store with the run.
    workers = [
        ClusterWorker(dispatcher.url, name=f"agent{i}", heartbeat_interval=0.5)
        for i in range(2)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
    for thread in threads:
        thread.start()

    # ----------------------------------------------------------- fan out a sweep
    # The env pair is the whole integration: every existing ParallelMap call
    # site picks the cluster up from here, no code changes anywhere.
    os.environ["REPRO_EXECUTOR"] = "cluster"
    os.environ["REPRO_CLUSTER_URL"] = dispatcher.url
    print("Building the Aurora dataset and fanning the sweep over the fleet...")
    dataset = build_dataset("aurora", seed=0, n_total=400)
    results = run_model_comparison(
        dataset,
        models=["PR", "DT", "KR"],
        scale="fast",
        seed=0,
        max_train_samples=120,
        n_jobs=2,
    )
    print(format_model_comparison(results))
    stats = dispatcher.stats()
    print(
        f"Fleet: workers={stats['workers']} batches={stats['batches_done']} "
        f"redispatched={stats['tasks_redispatched']}"
    )

    # --------------------------------------------------- degradation, explicit
    # The same sweep with nobody home: the executor raises
    # ExecutorUnavailableError and ParallelMap silently recomputes serially
    # — here we trigger the raw error to show what the fallback absorbs.
    for worker in workers:
        worker.stop()
    for thread in threads:
        thread.join(timeout=10.0)
    from repro.parallel.cluster import ClusterExecutor

    lonely = ClusterExecutor(url=dispatcher.url, worker_wait=0.5)
    try:
        lonely.map(abs, [1, -2], order=[0, 1], n_workers=2)
    except ExecutorUnavailableError as exc:
        print(f"No workers reachable -> serial fallback would kick in: {exc}")

    shutdown_dispatchers()


if __name__ == "__main__":
    main()
