#!/usr/bin/env python
"""Shortest-Time Question advisor across a batch of molecular systems.

Reproduces the workflow behind Table 3/4 of the paper: for every problem size
in a machine's catalogue, recommend the (nodes, tile size) configuration with
the shortest predicted CCSD iteration time, and compare the recommendation
against the true optimum found by exhaustive simulation of the sweep.

Run with::

    python examples/shortest_time_advisor.py [aurora|frontier]
"""

import sys

from repro.core.advisor import ResourceAdvisor
from repro.core.evaluation import evaluate_question_predictions, optimal_configurations
from repro.core.reporting import format_metrics, format_question_table
from repro.data.datasets import build_dataset


def main(machine: str = "aurora") -> None:
    print(f"Building the {machine} dataset and training the runtime model...")
    dataset = build_dataset(machine, seed=0)
    advisor = ResourceAdvisor.from_dataset(dataset, preset="fast")

    # Per-problem recommendations for three representative systems.
    print("\nPer-problem STQ recommendations:")
    for o, v in dataset.problem_sizes()[:3]:
        answer = advisor.shortest_time(o, v)
        print(
            f"  (O={o:3d}, V={v:4d}) -> {answer.n_nodes:4d} nodes, tile {answer.tile_size:3d}, "
            f"predicted {answer.predicted_runtime_s:8.1f} s"
        )
        top = advisor.ranked_configurations(o, v, objective="runtime", top_k=3)
        for rec in top.to_records():
            print(
                f"        runner-up: {int(rec['n_nodes']):4d} nodes, tile {int(rec['tile_size']):3d} "
                f"-> {rec['predicted_runtime_s']:.1f} s"
            )

    # Paper-style evaluation on the held-out pool (Tables 3 and 4).
    records = optimal_configurations(
        dataset.X_test,
        dataset.y_test,
        advisor.estimator.predict(dataset.X_test),
        objective="runtime",
    )
    report = evaluate_question_predictions(records, objective="runtime")
    print(f"\nShortest-time table for {machine} (true optimum vs model recommendation):")
    print(format_question_table(records, objective="runtime"))
    print("\n" + format_metrics(report, title=f"{machine} STQ metrics"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "aurora")
